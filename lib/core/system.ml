(* The ammBoost system simulator: epochs and rounds of the sidechain, the
   mainchain running in parallel, epoch-based deposits, committee election
   and key generation, meta/summary block production, Sync submission with
   mass-sync recovery, pruning on confirmation, and metric collection.

   This realizes the §3 API: SystemSetup/PartySetup happen in [create],
   CreateTx/VerifyTx in Traffic and Processor, UpdateState is meta/summary
   block production, Elect is the per-epoch sortition, and Prune fires when
   a Sync is confirmed. *)

module U256 = Amm_math.U256
module Rng = Amm_crypto.Rng
module Bls = Amm_crypto.Bls
module Address = Chain.Address
module Tx = Chain.Tx
module Eth = Mainchain.Eth
module Erc20 = Mainchain.Erc20
module Gas = Mainchain.Gas
module Token_bank = Tokenbank.Token_bank
module Sync_payload = Tokenbank.Sync_payload
module Processor = Sidechain.Processor
module Blocks = Sidechain.Blocks
module Tmetrics = Telemetry.Metrics
module Trace = Telemetry.Trace
module Log = Telemetry.Log
module Json = Telemetry.Json
module Growth_ledger = Observe.Growth_ledger
module Lifecycle = Observe.Lifecycle

let scope = "system"

(* Pre-resolved handles into the run's metrics registry, so the per-tx
   hot path pays a field access instead of a name lookup. *)
type tele = {
  sink : Telemetry.Report.sink;
  tr : Trace.t;
  c_generated : Tmetrics.counter;
  c_processed : Tmetrics.counter;
  c_rejected : Tmetrics.counter;
  c_sync_submitted : Tmetrics.counter;
  c_sync_applied : Tmetrics.counter;
  c_sync_failed : Tmetrics.counter;
  c_mass_syncs : Tmetrics.counter;
  c_pruned_epochs : Tmetrics.counter;
  c_deposits : Tmetrics.counter;
  c_rollbacks : Tmetrics.counter;
  c_sync_retries : Tmetrics.counter;
  c_degraded_signing : Tmetrics.counter;
  c_corrupted_partial : Tmetrics.counter;
  c_mode_transitions : Tmetrics.counter;
  c_exits : Tmetrics.counter;
  c_reconcile_applied : Tmetrics.counter;
  c_reconcile_voided : Tmetrics.counter;
  g_mode : Tmetrics.gauge;
  g_exit_value0 : Tmetrics.gauge;
  g_exit_value1 : Tmetrics.gauge;
  g_reconcile_voided0 : Tmetrics.gauge;
  g_reconcile_voided1 : Tmetrics.gauge;
  g_mempool_bytes : Tmetrics.gauge;
  h_recovery : Telemetry.Histogram.t;
  h_tx_latency : Telemetry.Histogram.t;
  h_consensus : Telemetry.Histogram.t;
  h_payout : Telemetry.Histogram.t;
  h_sync_inclusion : Telemetry.Histogram.t;
  h_meta_txs : Telemetry.Histogram.t;
  h_meta_bytes : Telemetry.Histogram.t;
  h_summary_bytes : Telemetry.Histogram.t;
  c_twin_audits : Tmetrics.counter;
  c_twin_divergences : Tmetrics.counter;
}

let make_tele sink =
  let reg = sink.Telemetry.Report.metrics in
  { sink; tr = sink.Telemetry.Report.trace;
    c_generated = Tmetrics.counter reg "traffic.generated";
    c_processed = Tmetrics.counter reg "txs.processed";
    c_rejected = Tmetrics.counter reg "txs.rejected";
    c_sync_submitted = Tmetrics.counter reg "sync.submitted";
    c_sync_applied = Tmetrics.counter reg "sync.applied";
    c_sync_failed = Tmetrics.counter reg "sync.failed";
    c_mass_syncs = Tmetrics.counter reg "sync.mass";
    c_pruned_epochs = Tmetrics.counter reg "prune.epochs";
    c_deposits = Tmetrics.counter reg "deposits.submitted";
    c_rollbacks = Tmetrics.counter reg "interruption.rollbacks";
    c_sync_retries = Tmetrics.counter reg "recovery.sync_retries";
    c_degraded_signing = Tmetrics.counter reg "recovery.degraded_signing";
    c_corrupted_partial = Tmetrics.counter reg "recovery.corrupted_partial";
    c_mode_transitions = Tmetrics.counter reg "watchdog.transitions";
    c_exits = Tmetrics.counter reg "exit.served";
    c_reconcile_applied = Tmetrics.counter reg "reconcile.users.applied";
    c_reconcile_voided = Tmetrics.counter reg "reconcile.users.voided";
    g_mode = Tmetrics.gauge reg "watchdog.mode";
    g_exit_value0 = Tmetrics.gauge reg "exit.claims.value0";
    g_exit_value1 = Tmetrics.gauge reg "exit.claims.value1";
    g_reconcile_voided0 = Tmetrics.gauge reg "reconcile.voided.value0";
    g_reconcile_voided1 = Tmetrics.gauge reg "reconcile.voided.value1";
    g_mempool_bytes = Tmetrics.gauge reg "mempool.bytes";
    h_recovery = Tmetrics.histogram reg "latency.recovery.sync";
    h_tx_latency = Tmetrics.histogram reg "latency.tx.sidechain";
    h_consensus = Tmetrics.histogram reg "latency.consensus";
    h_payout = Tmetrics.histogram reg "latency.payout.epoch";
    h_sync_inclusion = Tmetrics.histogram reg "latency.sync.inclusion";
    h_meta_txs = Tmetrics.histogram reg "meta_block.txs";
    h_meta_bytes = Tmetrics.histogram reg "meta_block.bytes";
    h_summary_bytes = Tmetrics.histogram reg "summary_block.bytes";
    c_twin_audits = Tmetrics.counter reg "twin.audits";
    c_twin_divergences = Tmetrics.counter reg "twin.divergences" }

type submission_status = Pending | Applied | Failed

type submission = {
  sub_epochs : int list;
  sub_tag : string;
  mutable status : submission_status;
}

(* Keep the raw signing material per epoch so fault injection can decide,
   at signing time, which share holders withhold their contribution. *)
type signer =
  | Plain_key of Bls.secret_key
  | Shared of { shares : Bls.share list; threshold : int }

type epoch_keys = {
  vk : Bls.public_key;
  commitments : Bls.commitments; (* [||] for Plain_key signing *)
  signer : signer;
}

type committee_record = {
  epoch : int;
  committee : int list;
  leader : int;
}

(* The liveness watchdog's operating modes. Normal → Degraded on
   sustained sync lag, retry pressure or degraded-quorum signing;
   → Halted when the watchdog gives up on the committee (the bank
   freezes and parties exit on chain); Halted → Recovering when a
   reconciliation of the pending certified summaries lands; Recovering
   → Normal after a clean invariant audit. *)
type mode = Normal | Degraded | Halted | Recovering

let mode_name = function
  | Normal -> "normal"
  | Degraded -> "degraded"
  | Halted -> "halted"
  | Recovering -> "recovering"

let mode_rank = function Normal -> 0 | Degraded -> 1 | Halted -> 2 | Recovering -> 3

type result = {
  cfg : Config.t;
  generated : int;
  processed : int;
  rejected : int;
  throughput : float;
  mean_tx_latency : float;
  mean_payout_latency : float;
  payouts_settled : int;
  sc_cumulative_bytes : int;
  sc_stored_bytes : int;
  sc_max_stored_bytes : int;
  max_summary_block_bytes : int;
  summary_user_entries : int;
      (* user entries across every summary built this run — O(active)
         under delta summaries, epochs × population before them *)
  summary_user_entries_max : int;
  mc_tx_bytes : int;
  mc_gas_total : int;
  mc_gas_by_label : (string * int) list;
  mc_bytes_by_label : (string * int) list;
  deposit_gas_mean : float;
  deposit_latency_mean : float;
  sync_latency_mean : float;
  last_sync_receipt : Token_bank.sync_receipt option;
  sync_count : int;
  epochs_run : int;
  epochs_applied : int;
  mass_syncs : int;
  sync_retries : int;
  degraded_signings : int;
  corrupted_partials : int;
  rollbacks : int;
  faults_injected : (string * int) list;
  replay_consistent : bool;
  rejection_reasons : (string * int) list;
  custody_consistent : bool;
  audit_passed : bool option;
      (* Some true/false when cfg.self_audit; every epoch summary replayed *)
  final_mode : string;
  mode_transitions : (float * string) list;
      (* (time, mode entered), oldest first; empty when never left Normal *)
  monitor_audits : int;
  monitor_violations : (string * int) list;
  durability : (string * int) list;
      (* durability.* counters from the durable session (records
         appended/replayed/skipped, snapshots written/verified/healed/
         rejected, WAL repaired/dropped); empty for non-durable runs *)
  exits_served : int;
  exit_claims0 : U256.t;
  exit_claims1 : U256.t;
  exit_gas_mean : float;
  exit_conservation : bool;
  halted_at : float option;
  recovery_latency : float option;
  reconciliation : Token_bank.reconciliation option;
  committees : committee_record list;
  swaps : int;
  mints : int;
  burns : int;
  collects : int;
  growth : Growth_ledger.t;
      (* per-epoch state-growth ledger (also mirrored into the sink as
         "growth.*" series) *)
  lifecycle_sampled : int;
  lifecycle_seen : int;
  twin_audits : int;
  twin_divergences : int;
      (* divergent keys reported across all epoch-boundary twin audits *)
  twin_consistent : bool;
      (* no twin divergence all run; vacuously true when the twin is off.
         A fault-free run must end twin-consistent (zero false positives);
         a run with injected state corruption must not. *)
  twin_reports : Twin.report list;
      (* forensic divergence reports, oldest first *)
  twin_injections : (int * string) list;
      (* (epoch, key) of every silent state corruption actually landed,
         oldest first — the detection gate diffs this against
         [twin_reports] *)
  twin_view : Twin.view option;
      (* sealed-epoch snapshots for time-travel queries (custody_at,
         read_at, position_fees); None when the twin is off *)
}

type t = {
  cfg : Config.t;
  rng_traffic : Rng.t;
  rng_keys : Rng.t;
  rng_net : Rng.t;
  users : Party.user array;
  miners : Party.miner array;
  eth : Eth.t;
  erc0 : Erc20.t;
  erc1 : Erc20.t;
  bank : Token_bank.t;
  pool : Uniswap.Pool.t;
  sc_chain : Blocks.t;
  traffic : Traffic.t;
  mempool : Tx.t Chain.Mempool.t;
  tx_latency : Metrics.agg;
  payouts : Metrics.payout_tracker;
  committee_keys : (int, epoch_keys) Hashtbl.t;
  mutable committees : committee_record list;
  signed_payloads : (int, Sync_payload.t * Bls.signature) Hashtbl.t;
  mutable submissions : submission list;
  mutable pending_confirm : (int list * int * float) list;
      (* epochs, inclusion height, inclusion time *)
  mutable checkpoints :
    (int * Token_bank.checkpoint * int * Twin.checkpoint option) list;
      (* height -> (state before, oracle mark before, twin mark before) *)
  mutable deposits_submitted_until : int;
  rollbacks_done : (int, unit) Hashtbl.t;
  plan : Faults.Fault_plan.t;
  oracle : Faults.Replay_oracle.t;
      (* end-of-run differential replay — since the twin took over the
         continuous-audit duty this is the oracle of the oracle: an
         independent full re-derivation that also cross-checks the twin *)
  twin : Twin.t option;
      (* the state twin (cfg.twin_audit): advanced from the same op
         stream the live system applies, byte-compared against the flat
         stores at every epoch boundary *)
  mutable twin_divergence_streak : int;
      (* consecutive epoch audits ending in divergence; 2 halts the run *)
  mutable twin_reports : Twin.report list;     (* newest first *)
  mutable twin_injections : (int * string) list;  (* newest first *)
  monitor : Monitor.t;
  durable : Durable.Session.t option;
      (* crash-consistent persistence: every oracle-visible state delta
         is also fed through the durable session (WAL verify-or-append),
         snapshots are taken at epoch boundaries, and the fault plan may
         kill the run at a round boundary via Session.maybe_crash *)
  genesis_vk : Bls.public_key;
  mutable mode : mode;
  mutable mode_transitions : (float * mode) list;  (* newest first *)
  mutable signing_streak : int;
      (* consecutive epoch summaries signed with withheld shares *)
  mutable halted_at : float option;
  mutable recovered_at : float option;
  mutable dissolved : bool;
      (* the sidechain stopped for good: post-halt, or scripted
         permanent committee loss after the halt *)
  mutable reconcile_inflight : bool;
  mutable reconciliation : Token_bank.reconciliation option;
  mutable last_summary_epoch : int;
  mutable retry_attempt : int;
  mutable next_retry_at : float;
  mutable outage_start : float option;
  mutable sync_retries : int;
  mutable degraded_signings : int;
  mutable corrupted_partials : int;
  mutable rollback_count : int;
  mutable mass_syncs : int;
  mutable max_summary_bytes : int;
  mutable summary_users_total : int;
  mutable summary_users_max : int;
  mutable max_sc_stored : int;
  mutable processed_total : int;
  mutable processed_in_window : int;
  mutable rejected_total : int;
  mutable swaps : int;
  mutable mints : int;
  mutable burns : int;
  mutable collects : int;
  growth : Growth_ledger.t;
  growth_labels : (string, int * int) Hashtbl.t;
      (* label -> (gas, bytes) cache merged from Eth.growth_deltas, so
         the per-epoch growth sample is O(changed labels), not a walk of
         the full per-label tables *)
  mutable mc_gas_cached : int;
  mutable mc_bytes_cached : int;
  lifecycle : Lifecycle.t;
  mutable counterfactual_bytes : int;
      (* cumulative Sepolia-encoded bytes the included ops would have
         cost on the mainchain (the per-epoch analytic counterfactual) *)
  tele : tele;
  rejections : (string, int) Hashtbl.t;
  mutable sync_receipts : Token_bank.sync_receipt list;
  mutable audit_trail :
    (int * Uniswap.Pool.t * Token_bank.snapshot * Blocks.meta list ref
    * Blocks.summary option ref)
    list;
}

(* Feed one state delta through the durable session (no-op when the run
   is not durable). Called beside every Replay_oracle record site so the
   WAL is exactly the oracle's op log plus rollback compensations. *)
let dur_record t r =
  match t.durable with Some s -> Durable.Session.record s r | None -> ()

(* Mirror a bank-layer op into the state twin (no-op when the twin is
   off). Called beside the oracle record sites, at execution time, so the
   twin's replica bank advances in exactly the live application order. *)
let twin_op t f = match t.twin with Some tw -> f tw | None -> ()

(* Round-boundary crash injection: raises [Durable.Session.Crashed]. *)
let dur_crash t ~epoch ~round =
  match t.durable with
  | Some s -> Durable.Session.maybe_crash s ~plan:t.plan ~epoch ~round
  | None -> ()

let genesis_liquidity = U256.of_string "1000000000000000000000000" (* 1e24 per side *)
let faucet_amount = U256.of_string "1000000000000000000000000000000" (* 1e30 *)
let deposit_lead_seconds = 96.0

(* ------------------------------------------------------------------ *)
(* Committee machinery                                                 *)
(* ------------------------------------------------------------------ *)

let elect_committee t ~epoch =
  let randomness = Amm_crypto.Sha256.digest_string (t.cfg.Config.seed ^ "/randomness") in
  let seed = Consensus.Election.seed_for_epoch ~randomness ~epoch in
  let credentials =
    Array.to_list
      (Array.map
         (fun (m : Party.miner) ->
           Consensus.Election.credential ~sk:m.Party.m_sk ~miner:m.Party.m ~seed)
         t.miners)
  in
  let committee, leader =
    Consensus.Election.elect ~credentials
      ~committee_size:(Stdlib.min t.cfg.Config.committee_size (Array.length t.miners))
  in
  t.committees <- { epoch; committee; leader } :: t.committees

let make_committee_keys ~cfg ~rng_keys ~epoch =
  let rng = Rng.split rng_keys (Printf.sprintf "committee-%d" epoch) in
  if cfg.Config.threshold_signing then begin
    let n = cfg.Config.committee_size in
    let threshold = Stdlib.min n ((2 * cfg.Config.max_faulty) + 2) in
    let vk, commitments, shares = Bls.dkg rng ~n ~threshold in
    { vk; commitments; signer = Shared { shares; threshold } }
  end
  else begin
    (* The paper's PoC signs Sync with a pre-generated key. *)
    let sk, vk = Bls.keygen rng in
    { vk; commitments = [||]; signer = Plain_key sk }
  end

let committee_keys t ~epoch =
  match Hashtbl.find_opt t.committee_keys epoch with
  | Some k -> k
  | None ->
    let keys = make_committee_keys ~cfg:t.cfg ~rng_keys:t.rng_keys ~epoch in
    Hashtbl.replace t.committee_keys epoch keys;
    keys

(* Threshold-sign the epoch summary. The fault plan may withhold up to
   min(f, n − threshold) shares and corrupt up to the surplus beyond the
   quorum among the remainder — the degraded-quorum path: corrupted
   partials fail [Bls.verify_partial] against the DKG commitments and
   are discarded, and any [threshold] distinct honest shares
   Lagrange-combine to the same group element, so the signature still
   verifies under the committee vk. *)
let sign_payload t ~epoch keys msg =
  match keys.signer with
  | Plain_key sk ->
    t.signing_streak <- 0;
    Bls.sign sk msg
  | Shared { shares; threshold } ->
    let n = List.length shares in
    let max_withheld = Stdlib.min t.cfg.Config.max_faulty (n - threshold) in
    let withheld =
      Faults.Fault_plan.withheld_shares t.plan ~epoch ~n ~max_withheld
    in
    let usable =
      if withheld = [] then shares
      else
        List.filter (fun s -> not (List.mem (Bls.share_index s) withheld)) shares
    in
    (* Byzantine members tamper their partials; cap keeps the honest
       remainder at or above the quorum. *)
    let max_corrupted =
      Stdlib.min t.cfg.Config.max_faulty (List.length usable - threshold)
    in
    let corrupted =
      Faults.Fault_plan.corrupted_shares t.plan ~epoch ~n ~max_corrupted
    in
    let partials =
      List.map
        (fun s ->
          let p = Bls.partial_sign s msg in
          if List.mem (Bls.share_index s) corrupted then Bls.tamper_partial p
          else p)
        usable
    in
    let verified =
      List.filter (Bls.verify_partial ~commitments:keys.commitments msg) partials
    in
    let caught = List.length partials - List.length verified in
    if caught > 0 then begin
      t.corrupted_partials <- t.corrupted_partials + caught;
      Tmetrics.inc ~by:caught t.tele.c_corrupted_partial
    end;
    match Bls.combine ~threshold verified with
    | Some signature ->
      if withheld = [] && caught = 0 then t.signing_streak <- 0
      else begin
        t.signing_streak <- t.signing_streak + 1;
        t.degraded_signings <- t.degraded_signings + 1;
        Tmetrics.inc t.tele.c_degraded_signing;
        Log.warn ~scope
          ~fields:
            [ ("epoch", Json.Int epoch);
              ("withheld", Json.Int (List.length withheld));
              ("corrupted", Json.Int caught);
              ("quorum", Json.Int (List.length verified)) ]
          "degraded-quorum signing: shares withheld or corrupted"
      end;
      signature
    | None -> failwith "System: threshold combine failed"

(* Capped exponential backoff for Sync re-submission after an observed
   failure (dropped from the mempool, rejected on chain, reorged out). *)
let max_retry_exponent = 5

let schedule_retry t ~now =
  let mult = float_of_int (1 lsl Stdlib.min t.retry_attempt max_retry_exponent) in
  t.retry_attempt <- t.retry_attempt + 1;
  t.next_retry_at <- now +. (t.cfg.Config.mc_block_interval *. mult);
  if t.outage_start = None then t.outage_start <- Some now

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

let create ?sink ?durable cfg =
  let sink =
    match sink with Some s -> s | None -> Telemetry.Report.sink ()
  in
  let rng_root = Rng.create cfg.Config.seed in
  let rng_traffic = Rng.split rng_root "traffic" in
  let rng_keys = Rng.split rng_root "keys" in
  let rng_net = Rng.split rng_root "net" in
  let users = Party.make_users (Rng.split rng_root "users") ~count:cfg.Config.users
      ~lp_fraction:cfg.Config.lp_fraction in
  let miners = Party.make_miners (Rng.split rng_root "miners") ~count:cfg.Config.miners in
  let token0 = Chain.Token.make ~id:0 ~symbol:"TKA" in
  let token1 = Chain.Token.make ~id:1 ~symbol:"TKB" in
  let erc0 = Erc20.deploy token0 and erc1 = Erc20.deploy token1 in
  let eth = Eth.create ~interval:cfg.Config.mc_block_interval
      ~gas_limit:cfg.Config.mc_gas_limit ~k_depth:cfg.Config.mc_confirmations
      ~rng:rng_net () in
  let plan = Faults.Fault_plan.create ~seed:cfg.Config.seed cfg.Config.faults in
  (* The genesis committee's verification key is recorded at deploy
     (SystemSetup). *)
  let keys0 = make_committee_keys ~cfg ~rng_keys ~epoch:0 in
  let bank = Token_bank.deploy ~token0:erc0 ~token1:erc1 ~genesis_committee_vk:keys0.vk in
  let twin =
    if cfg.Config.twin_audit then
      Some
        (Twin.create ~seed:cfg.Config.seed ~genesis_committee_vk:keys0.vk
           ~flash_fee_pips:cfg.Config.fee_pips)
    else None
  in
  let pool =
    Uniswap.Pool.create
      ~pool_id:(Token_bank.create_pool bank ~flash_fee_pips:cfg.Config.fee_pips)
      ~token0 ~token1 ~fee_pips:cfg.Config.fee_pips
      ~tick_spacing:cfg.Config.tick_spacing ~sqrt_price:Amm_math.Q96.q96
  in
  let t =
    { cfg; rng_traffic; rng_keys; rng_net; users; miners; eth; erc0; erc1; bank; pool;
      sc_chain =
        Blocks.create
          ~mainchain_ref:(Amm_crypto.Sha256.digest_string (cfg.Config.seed ^ "/genesis"));
      traffic = Traffic.create ~rng:rng_traffic ~cfg ~users;
      mempool = Chain.Mempool.create ~size:(fun tx -> tx.Tx.wire_size);
      tx_latency = Metrics.agg (); payouts = Metrics.payout_tracker ();
      committee_keys = Hashtbl.create 16; committees = [];
      signed_payloads = Hashtbl.create 16; submissions = [];
      pending_confirm = []; checkpoints = []; deposits_submitted_until = -1;
      rollbacks_done = Hashtbl.create 4;
      plan; oracle = Faults.Replay_oracle.create ();
      twin; twin_divergence_streak = 0; twin_reports = []; twin_injections = [];
      monitor =
        Monitor.create
          ~thresholds:
            { Monitor.lag_warning =
                Stdlib.max 1 (cfg.Config.watchdog.Config.wd_stall_degraded - 1);
              lag_degraded = cfg.Config.watchdog.Config.wd_stall_degraded;
              signing_streak_degraded = cfg.Config.watchdog.Config.wd_signing_streak }
          sink;
      durable;
      genesis_vk = keys0.vk;
      mode = Normal; mode_transitions = []; signing_streak = 0;
      halted_at = None; recovered_at = None; dissolved = false;
      reconcile_inflight = false; reconciliation = None;
      last_summary_epoch = -1; retry_attempt = 0; next_retry_at = Float.infinity;
      outage_start = None; sync_retries = 0; degraded_signings = 0;
      corrupted_partials = 0;
      rollback_count = 0; mass_syncs = 0; max_summary_bytes = 0;
      summary_users_total = 0; summary_users_max = 0;
      max_sc_stored = 0;
      processed_total = 0; processed_in_window = 0; rejected_total = 0; swaps = 0; mints = 0; burns = 0;
      growth = Growth_ledger.create ~metrics:sink.Telemetry.Report.metrics ();
      growth_labels = Hashtbl.create 16; mc_gas_cached = 0; mc_bytes_cached = 0;
      lifecycle =
        Lifecycle.create ~metrics:sink.Telemetry.Report.metrics
          ~seed:cfg.Config.seed ();
      counterfactual_bytes = 0;
      collects = 0; tele = make_tele sink; rejections = Hashtbl.create 8;
      sync_receipts = []; audit_trail = [] }
  in
  Hashtbl.replace t.committee_keys 0 keys0;
  (* Faucet + unlimited approvals (users sign them once; the per-epoch
     deposit flow still models the approval round-trips for latency). *)
  Array.iter
    (fun (u : Party.user) ->
      Erc20.mint erc0 u.Party.address faucet_amount;
      Erc20.mint erc1 u.Party.address faucet_amount;
      Erc20.approve erc0 ~owner:u.Party.address ~spender:(Token_bank.address bank)
        U256.max_value;
      Erc20.approve erc1 ~owner:u.Party.address ~spender:(Token_bank.address bank)
        U256.max_value)
    t.users;
  (* Bootstrap deposits for epoch 0 (before mainchain time starts). *)
  Array.iter
    (fun (u : Party.user) ->
      let extra =
        if u.Party.user_index = 0 then U256.mul genesis_liquidity (U256.of_int 2)
        else U256.zero
      in
      let amount0 = U256.add cfg.Config.deposit_per_epoch extra in
      let amount1 = U256.add cfg.Config.deposit_per_epoch extra in
      match
        Token_bank.deposit t.bank ~user:u.Party.address ~for_epoch:0 ~amount0
          ~amount1
      with
      | Ok () ->
        Faults.Replay_oracle.record_deposit t.oracle ~user:u.Party.address
          ~for_epoch:0 ~amount0 ~amount1;
        twin_op t (fun tw ->
            Twin.bank_deposit tw ~user:u.Party.address ~for_epoch:0 ~amount0
              ~amount1);
        dur_record t
          (Durable.Record.Op
             (Durable.Record.Deposit
                { user = u.Party.address; for_epoch = 0; amount0; amount1 }))
      | Error e -> failwith ("System.create: bootstrap deposit failed: " ^ e))
    t.users;
  t.deposits_submitted_until <- 0;
  t

(* The genesis LP seeds the pool with a full-range position in round 0. *)
let genesis_mint_tx t =
  let lp = t.users.(0) in
  let sign = if t.cfg.Config.sign_transactions then Some lp.Party.sk else None in
  Tx.create ?sign ~issuer:lp.Party.address ~issuer_pk:lp.Party.pk ~pool:0 ~issued_round:0
    ~issued_at:0.0
    (Tx.Mint
       { lower_tick = -887220; upper_tick = 887220;
         amount0_desired = genesis_liquidity; amount1_desired = genesis_liquidity;
         target = Tx.New_position })

(* ------------------------------------------------------------------ *)
(* Deposits for upcoming epochs                                        *)
(* ------------------------------------------------------------------ *)

let submit_epoch_deposits t ~for_epoch ~at =
  (* ERC20 approvals are granted once at setup; the deposit's 4-leg flow
     still models the approval round-trips for latency, and — matching the
     paper's gas/growth accounting — only the deposit transaction itself
     is charged to the chain. *)
  Array.iter
    (fun (u : Party.user) ->
      let deposit_size = Chain.Encoding.envelope_size + Chain.Encoding.selector_size + 64 in
      let meter = Gas.meter () in
      (* Metering runs against current state at submission; execution moves
         the tokens when the transaction lands. *)
      let amount = t.cfg.Config.deposit_per_epoch in
      Eth.submit t.eth ~at
        { Eth.label = "deposit"; size_bytes = deposit_size;
          gas = Gas_model.paper_deposit_gas;
          flow_txs = Gas_model.deposit_flow_txs; tag = None;
          execute =
            Some
              (fun _height ->
                match
                  Token_bank.deposit ~meter t.bank ~user:u.Party.address ~for_epoch
                    ~amount0:amount ~amount1:amount
                with
                | Ok () ->
                  Faults.Replay_oracle.record_deposit t.oracle
                    ~user:u.Party.address ~for_epoch ~amount0:amount
                    ~amount1:amount;
                  twin_op t (fun tw ->
                      Twin.bank_deposit tw ~user:u.Party.address ~for_epoch
                        ~amount0:amount ~amount1:amount);
                  dur_record t
                    (Durable.Record.Op
                       (Durable.Record.Deposit
                          { user = u.Party.address; for_epoch;
                            amount0 = amount; amount1 = amount }))
                | Error e ->
                  (* Deposits in flight when the bank halts revert; any
                     other failure is a simulator bug. *)
                  if Token_bank.is_halted t.bank then
                    Log.warn ~scope ~t:(Eth.now t.eth)
                      ~fields:
                        [ ("user", Json.Int u.Party.user_index);
                          ("for_epoch", Json.Int for_epoch) ]
                      "deposit reverted: bank halted"
                  else failwith ("System: deposit failed: " ^ e)) })
    t.users

let maybe_submit_deposits t ~now =
  let dur = Config.epoch_duration t.cfg in
  let due epoch = (float_of_int epoch *. dur) -. deposit_lead_seconds -. dur in
  while due (t.deposits_submitted_until + 1) <= now do
    let e = t.deposits_submitted_until + 1 in
    submit_epoch_deposits t ~for_epoch:e ~at:now;
    Tmetrics.inc ~by:(Array.length t.users) t.tele.c_deposits;
    Trace.instant t.tele.tr ~cat:"mainchain" ~tid:2
      ~args:
        [ ("for_epoch", Json.Int e); ("users", Json.Int (Array.length t.users)) ]
      ~name:"deposits-submitted" ~ts:now ();
    Log.debug ~scope ~t:now
      ~fields:[ ("for_epoch", Json.Int e); ("users", Json.Int (Array.length t.users)) ]
      "epoch deposits submitted";
    t.deposits_submitted_until <- e
  done

(* ------------------------------------------------------------------ *)
(* Sync submission and confirmation                                    *)
(* ------------------------------------------------------------------ *)

let estimate_sync_gas payloads =
  List.fold_left
    (fun acc p ->
      let size = Sync_payload.abi_size p in
      acc + Gas.calldata_cost_of_size size + Gas.keccak_cost size + Gas.ec_mul
      + Gas.pairing_check
      + (Sync_payload.storage_words p * Gas.sstore_word)
      + (List.length p.Sync_payload.users * Gas.payout_transfer))
    Gas.tx_base payloads

let record_rejections t stats =
  List.iter
    (fun (reason, n) ->
      Hashtbl.replace t.rejections reason
        (n + Option.value ~default:0 (Hashtbl.find_opt t.rejections reason)))
    stats.Processor.rejection_reasons

let epochs_in_flight t =
  List.concat_map
    (fun s -> if s.status = Pending then s.sub_epochs else [])
    t.submissions

let submit_sync t ~epoch ~at ~corrupt =
  let applied = Token_bank.last_synced_epoch t.bank in
  let in_flight = epochs_in_flight t in
  let wanted =
    (* Under permanent committee loss some epochs never produced a
       summary; only resubmittable (signed) epochs are wanted. *)
    List.filter
      (fun e -> (not (List.mem e in_flight)) && Hashtbl.mem t.signed_payloads e)
      (List.init (epoch - applied) (fun i -> applied + 1 + i))
  in
  if wanted <> [] then begin
    let mass = List.length wanted > 1 in
    if mass then begin
      t.mass_syncs <- t.mass_syncs + 1;
      Tmetrics.inc t.tele.c_mass_syncs;
      Log.warn ~scope ~t:at
        ~fields:
          [ ("epochs",
             Json.String (String.concat "," (List.map string_of_int wanted))) ]
        "mass-sync recovery: resubmitting unapplied epochs"
    end;
    let signed =
      List.map
        (fun e ->
          match Hashtbl.find_opt t.signed_payloads e with
          | Some sp -> sp
          | None -> failwith (Printf.sprintf "System: no signed payload for epoch %d" e))
        wanted
    in
    let signed =
      if not corrupt then signed
      else
        (* A malicious leader submits tampered balances: TokenBank must
           reject (signature no longer covers the payload). *)
        List.map
          (fun (p, s) ->
            ( { p with
                Sync_payload.pool_balance0 =
                  U256.add p.Sync_payload.pool_balance0 U256.one },
              s ))
          signed
    in
    let size =
      List.fold_left (fun acc (p, _) -> acc + Sync_payload.abi_size p) 0 signed
    in
    let attempt = List.length t.submissions in
    let tag = Printf.sprintf "sync-%d-%d" epoch attempt in
    let submission = { sub_epochs = wanted; sub_tag = tag; status = Pending } in
    t.submissions <- submission :: t.submissions;
    Tmetrics.inc t.tele.c_sync_submitted;
    let span_name = if mass then "mass-sync" else "sync" in
    let span_args status =
      [ ("epochs", Json.String (String.concat "," (List.map string_of_int wanted)));
        ("bytes", Json.Int size); ("status", Json.String status) ]
    in
    let mc_epoch_at at = int_of_float (at /. Config.epoch_duration t.cfg) in
    if
      Faults.Fault_plan.sync_dropped t.plan ~epoch ~attempt
      || Faults.Fault_plan.sync_starved t.plan ~epoch:(mc_epoch_at at)
    then begin
      (* Mempool eviction (random drop, or a scripted quorum-starvation
         window): the transaction never reaches a block. The leader
         notices the missing receipt and retries with backoff. *)
      submission.status <- Failed;
      Tmetrics.inc t.tele.c_sync_failed;
      Trace.complete t.tele.tr ~cat:"mainchain" ~tid:2
        ~args:(span_args "dropped") ~name:span_name ~ts:at ~dur:0.0 ();
      Log.warn ~scope ~t:at
        ~fields:[ ("tag", Json.String tag) ]
        "fault: sync transaction dropped from the mempool";
      schedule_retry t ~now:at
    end
    else
      Eth.submit t.eth ~at
        { Eth.label = "sync"; size_bytes = size;
          gas = estimate_sync_gas (List.map fst signed);
          flow_txs = Gas_model.sync_flow_txs; tag = Some tag;
          execute =
            Some
              (fun height ->
                (* Snapshot for rollback modeling before any state change,
                   paired with the oracle's op-log position. *)
                t.checkpoints <-
                  (height, Token_bank.checkpoint t.bank,
                   Faults.Replay_oracle.mark t.oracle,
                   Option.map Twin.checkpoint t.twin)
                  :: t.checkpoints;
                let time = Eth.now t.eth in
                let time = if time > at then time else at in
                match Token_bank.sync t.bank ~signed with
                | Ok receipt ->
                  submission.status <- Applied;
                  t.sync_receipts <- receipt :: t.sync_receipts;
                  Faults.Replay_oracle.record_sync t.oracle signed;
                  twin_op t (fun tw -> Twin.bank_sync tw signed);
                  dur_record t (Durable.Record.Op (Durable.Record.Sync signed));
                  Tmetrics.inc t.tele.c_sync_applied;
                  List.iter
                    (fun (p, _) ->
                      Lifecycle.on_submitted t.lifecycle
                        ~epoch:p.Sync_payload.epoch ~at:time
                        ~l1_bytes:(Sync_payload.abi_size p))
                    signed;
                  Telemetry.Histogram.observe t.tele.h_sync_inclusion (time -. at);
                  (* An applied sync ends any submission outage. *)
                  t.retry_attempt <- 0;
                  t.next_retry_at <- Float.infinity;
                  (match t.outage_start with
                  | Some t0 ->
                    Telemetry.Histogram.observe t.tele.h_recovery (time -. t0);
                    t.outage_start <- None
                  | None -> ());
                  Trace.complete t.tele.tr ~cat:"mainchain" ~tid:2
                    ~args:(span_args "applied") ~name:span_name ~ts:at
                    ~dur:(time -. at) ();
                  t.pending_confirm <-
                    (receipt.Token_bank.epochs_covered, height, time)
                    :: t.pending_confirm
                | Error rejection ->
                  submission.status <- Failed;
                  Tmetrics.inc t.tele.c_sync_failed;
                  let reg = t.tele.sink.Telemetry.Report.metrics in
                  Tmetrics.inc
                    (Tmetrics.counter reg
                       ("sync.rejected." ^ Token_bank.rejection_class rejection));
                  Trace.complete t.tele.tr ~cat:"mainchain" ~tid:2
                    ~args:(span_args "failed") ~name:span_name ~ts:at
                    ~dur:(time -. at) ();
                  Log.warn ~scope ~t:time
                    ~fields:
                      [ ("tag", Json.String tag);
                        ("class",
                         Json.String (Token_bank.rejection_class rejection));
                        ("reason",
                         Json.String (Token_bank.rejection_to_string rejection)) ]
                    "sync transaction failed on chain";
                  schedule_retry t ~now:time) }
  end

(* Retry pump: once the backoff deadline passes and summaries are still
   unapplied, re-submit (a mass-sync when several epochs are missing). *)
let maybe_retry_sync t ~now =
  if t.next_retry_at <= now then begin
    t.next_retry_at <- Float.infinity;
    if
      t.mode <> Halted && (not t.dissolved)
      && t.last_summary_epoch >= 0
      && Token_bank.last_synced_epoch t.bank < t.last_summary_epoch
    then begin
      t.sync_retries <- t.sync_retries + 1;
      Tmetrics.inc t.tele.c_sync_retries;
      Log.info ~scope ~t:now
        ~fields:
          [ ("attempt", Json.Int t.retry_attempt);
            ("target_epoch", Json.Int t.last_summary_epoch) ]
        "sync retry (capped exponential backoff)";
      submit_sync t ~epoch:t.last_summary_epoch ~at:now ~corrupt:false
    end
  end

(* One growth-ledger row: every layer's state footprint at an epoch
   boundary. Key names are the stable registry documented in DESIGN.md
   §4f; the checked-in guard baseline depends on them. *)
let sample_growth t ~epoch ~now =
  (* Merge the mainchain's per-label deltas into the cache — only labels
     whose totals moved since the last sample are touched, instead of
     re-walking (and re-summing) the full per-label tables every epoch.
     The tables are monotone, so the cache reproduces the snapshot
     accessors byte-for-byte. *)
  List.iter
    (fun (l, g, b) ->
      let og, ob =
        Option.value ~default:(0, 0) (Hashtbl.find_opt t.growth_labels l)
      in
      t.mc_gas_cached <- t.mc_gas_cached + g - og;
      t.mc_bytes_cached <- t.mc_bytes_cached + b - ob;
      Hashtbl.replace t.growth_labels l (g, b))
    (Eth.growth_deltas t.eth);
  let labels =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.growth_labels [])
  in
  let fields =
    [ ("mc.bytes.total", float_of_int t.mc_bytes_cached);
      ("mc.gas.total", float_of_int t.mc_gas_cached);
      ("sc.cumulative_bytes", float_of_int (Blocks.cumulative_bytes t.sc_chain));
      ("sc.stored_bytes", float_of_int (Blocks.stored_bytes t.sc_chain));
      ("sc.meta_stored", float_of_int (Blocks.meta_count_stored t.sc_chain));
      ("summary.max_bytes", float_of_int t.max_summary_bytes);
      ("bank.storage_words", float_of_int (Token_bank.storage_words t.bank));
      ("bank.synced_epoch", float_of_int (Token_bank.last_synced_epoch t.bank));
      ("mempool.bytes", float_of_int (Chain.Mempool.byte_size t.mempool));
      ("baseline.bytes.sepolia", float_of_int t.counterfactual_bytes) ]
    @ List.map (fun (l, (_, b)) -> ("mc.bytes." ^ l, float_of_int b)) labels
    @ List.map (fun (l, (g, _)) -> ("mc.gas." ^ l, float_of_int g)) labels
  in
  Growth_ledger.sample t.growth ~epoch ~t:now fields

(* Inclusion time isn't passed to the execute callback, so resolve it from
   the tag when settling. *)
let settle_confirmed t =
  let confirmed, still =
    List.partition (fun (_, h, _) -> h <= Eth.confirmed_height t.eth) t.pending_confirm
  in
  let now = Eth.now t.eth in
  List.iter
    (fun (epochs, _h, inclusion_time) ->
      Trace.complete t.tele.tr ~cat:"mainchain" ~tid:2
        ~args:
          [ ("epochs", Json.String (String.concat "," (List.map string_of_int epochs)))
          ]
        ~name:"confirm" ~ts:inclusion_time
        ~dur:(Float.max 0.0 (now -. inclusion_time))
        ();
      List.iter
        (fun e ->
          (match Metrics.pending_mean_issued t.payouts ~epoch:e with
          | Some (mean_issued, _n) ->
            Telemetry.Histogram.observe t.tele.h_payout (inclusion_time -. mean_issued)
          | None -> ());
          Metrics.settle_epoch t.payouts ~epoch:e ~sync_time:inclusion_time;
          Lifecycle.on_stage t.lifecycle ~epoch:e ~stage:Lifecycle.Confirmed
            ~at:now;
          let reclaimed = Blocks.prune_epoch t.sc_chain ~epoch:e in
          Lifecycle.on_stage t.lifecycle ~epoch:e ~stage:Lifecycle.Pruned ~at:now;
          Tmetrics.inc t.tele.c_pruned_epochs;
          Trace.complete t.tele.tr ~cat:"mainchain" ~tid:2
            ~args:[ ("epoch", Json.Int e); ("reclaimed_bytes", Json.Int reclaimed) ]
            ~name:"prune" ~ts:now ~dur:0.0 ();
          Log.debug ~scope ~t:now
            ~fields:
              [ ("epoch", Json.Int e); ("reclaimed_bytes", Json.Int reclaimed) ]
            "epoch confirmed: meta-blocks pruned")
        epochs)
    confirmed;
  t.pending_confirm <- still;
  (* Checkpoints at or below the confirmed frontier can never be restored
     (forks only abandon unconfirmed blocks): release the newest of them
     so the bank's undo journal stays bounded by the unconfirmed window. *)
  let frontier = Eth.confirmed_height t.eth in
  let dead, live =
    List.partition (fun (h, _, _, _) -> h <= frontier) t.checkpoints
  in
  match dead with
  | (_, ck, _, tck) :: _ ->
    (* Newest-first list: the head of [dead] is the youngest retired
       checkpoint; releasing it drops the journal history below it. *)
    Token_bank.release_checkpoint t.bank ck;
    (match (t.twin, tck) with
    | Some tw, Some tc -> Twin.release tw tc
    | _ -> ());
    t.checkpoints <- live
  | [] -> ()

(* Fork switch abandoning every block from [height] to the tip: restore
   TokenBank (and the oracle's op log) to the paired pre-sync checkpoint,
   fail every sync the fork orphaned, and arm the retry machinery; the
   re-submission happens via retry or the normal mass-sync path. *)
let rollback_to t ~height =
  let n = Eth.height t.eth - height + 1 in
  if n > 0 then begin
    t.rollback_count <- t.rollback_count + 1;
    Tmetrics.inc t.tele.c_rollbacks;
    let _dropped = Eth.rollback t.eth n in
    (match List.find_opt (fun (h, _, _, _) -> h = height) t.checkpoints with
    | Some (_, ck, mark, tck) ->
      Token_bank.restore t.bank ck;
      Faults.Replay_oracle.truncate t.oracle mark;
      (* The twin rewinds its replica and bank shadow in step, recording
         a synthetic rollback op so bisection stays truthful. *)
      (match (t.twin, tck) with
      | Some tw, Some tc -> Twin.restore tw tc
      | _ -> ());
      (* The WAL cannot un-append: a reorg is logged as a compensation
         record so replay reproduces the truncation deterministically. *)
      dur_record t (Durable.Record.Truncate { keep = mark })
    | None -> ());
    (* Checkpoints at or past the fork point refer to abandoned blocks. *)
    t.checkpoints <- List.filter (fun (h, _, _, _) -> h < height) t.checkpoints;
    let gone, keep =
      List.partition (fun (_, h', _) -> h' >= height) t.pending_confirm
    in
    t.pending_confirm <- keep;
    List.iter
      (fun (epochs, _, _) ->
        List.iter
          (fun s ->
            if
              s.status = Applied
              && List.exists (fun e -> List.mem e s.sub_epochs) epochs
            then s.status <- Failed)
          t.submissions)
      gone;
    schedule_retry t ~now:(Eth.now t.eth)
  end

(* Scripted interruption: a fork abandons the block carrying the
   configured epoch's sync while it is still unconfirmed. *)
let inject_rollback t ~epoch =
  if not (Hashtbl.mem t.rollbacks_done epoch) then
    match
      List.find_map
        (fun (epochs, h, _) -> if List.mem epoch epochs then Some h else None)
        t.pending_confirm
    with
    | None -> () (* not applied yet, or already confirmed: too deep *)
    | Some h ->
      Hashtbl.replace t.rollbacks_done epoch ();
      Log.warn ~scope ~t:(Eth.now t.eth)
        ~fields:
          [ ("epoch", Json.Int epoch);
            ("blocks", Json.Int (Eth.height t.eth - h + 1)) ]
        "interruption: rolling back mainchain past sync inclusion";
      rollback_to t ~height:h

(* Plan-driven variable-depth reorgs: an unconfirmed sync whose epoch
   drew a reorg is rolled back once the fork reaches the drawn depth
   (raise [mc_confirmations] to widen the vulnerable window). At most
   one reorg fires per round. *)
let inject_chaos_reorgs t =
  (* Past a halt the checkpoints no longer describe the system state
     (the halt and the exits are not in them), so reorgs stop. *)
  if t.mode = Halted || t.dissolved then ()
  else
    match
    List.find_map
      (fun (epochs, h, _) ->
        let key_epoch = List.fold_left Stdlib.max 0 epochs in
        if Hashtbl.mem t.rollbacks_done key_epoch then None
        else
          match Faults.Fault_plan.reorg_depth t.plan ~epoch:key_epoch with
          | Some depth when Eth.height t.eth - h + 1 >= depth ->
            Some (key_epoch, h, depth)
          | _ -> None)
      t.pending_confirm
  with
  | None -> ()
  | Some (epoch, h, depth) ->
    Hashtbl.replace t.rollbacks_done epoch ();
    Faults.Fault_plan.note t.plan "mainchain.reorg" 1;
    Log.warn ~scope ~t:(Eth.now t.eth)
      ~fields:[ ("epoch", Json.Int epoch); ("depth", Json.Int depth) ]
      "fault: mainchain reorg abandons sync inclusion";
    rollback_to t ~height:h

(* ------------------------------------------------------------------ *)
(* Liveness watchdog: operating modes, emergency exit, reconciliation  *)
(* ------------------------------------------------------------------ *)

let set_mode t m ~now ~reason =
  if m <> t.mode then begin
    Log.warn ~scope ~t:now
      ~fields:
        [ ("from", Json.String (mode_name t.mode));
          ("to", Json.String (mode_name m));
          ("reason", Json.String reason) ]
      "watchdog: operating-mode transition";
    Trace.instant t.tele.tr ~cat:"watchdog" ~tid:2
      ~args:[ ("to", Json.String (mode_name m)); ("reason", Json.String reason) ]
      ~name:"mode-transition" ~ts:now ();
    Tmetrics.inc t.tele.c_mode_transitions;
    Tmetrics.set t.tele.g_mode (float_of_int (mode_rank m));
    t.mode <- m;
    t.mode_transitions <- (now, m) :: t.mode_transitions
  end

(* Certified summaries the bank has not applied, oldest first — the
   monitor audits their certificate chain and a reconciliation replays
   them wholesale. *)
let pending_signed t =
  let applied = Token_bank.last_synced_epoch t.bank in
  List.filter_map
    (fun e -> Hashtbl.find_opt t.signed_payloads e)
    (List.init
       (Stdlib.max 0 (t.last_summary_epoch - applied))
       (fun i -> applied + 1 + i))

(* Emergency exit: one on-chain withdrawal per party against the frozen
   bank state. Gas is estimated with the same EVM-schedule terms the
   bank meters on execution. *)
let submit_exit t (u : Party.user) ~at =
  let npos =
    List.fold_left
      (fun n (p : Sync_payload.position_entry) ->
        if Address.equal p.Sync_payload.owner u.Party.address then n + 1 else n)
      0 (Token_bank.positions t.bank)
  in
  let calldata = Chain.Encoding.selector_size + 32 in
  let gas =
    Gas.tx_base + Gas.calldata_cost_of_size calldata + Gas.sstore_word
    + (npos * ((8 * Gas.sload) + Gas.sstore_update))
    + (2 * Gas.payout_transfer)
  in
  Eth.submit t.eth ~at
    { Eth.label = "exit"; size_bytes = Chain.Encoding.envelope_size + calldata;
      gas; flow_txs = 1; tag = None;
      execute =
        Some
          (fun _height ->
            let time = Eth.now t.eth in
            match Token_bank.emergency_exit t.bank ~claimant:u.Party.address with
            | Ok claim ->
              Faults.Replay_oracle.record_exit t.oracle ~claimant:u.Party.address;
              twin_op t (fun tw -> Twin.bank_exit tw ~claimant:u.Party.address);
              dur_record t
                (Durable.Record.Op
                   (Durable.Record.Exit { claimant = u.Party.address }));
              Tmetrics.inc t.tele.c_exits;
              Tmetrics.add_gauge t.tele.g_exit_value0
                (U256.to_float (U256.add claim.Token_bank.claim0 claim.Token_bank.refund0));
              Tmetrics.add_gauge t.tele.g_exit_value1
                (U256.to_float (U256.add claim.Token_bank.claim1 claim.Token_bank.refund1));
              Log.info ~scope ~t:time
                ~fields:
                  [ ("user", Json.Int u.Party.user_index);
                    ("claim0", Json.String (U256.to_string claim.Token_bank.claim0));
                    ("claim1", Json.String (U256.to_string claim.Token_bank.claim1));
                    ("positions_closed",
                     Json.Int claim.Token_bank.positions_closed);
                    ("gas", Json.Int (Gas.total claim.Token_bank.exit_gas)) ]
                "emergency exit served"
            | Error rejection ->
              Log.warn ~scope ~t:time
                ~fields:
                  [ ("user", Json.Int u.Party.user_index);
                    ("reason",
                     Json.String (Token_bank.rejection_to_string rejection)) ]
                "emergency exit rejected") }

(* Halting: freeze the bank at its synced frontier, dissolve the
   sidechain (pending traffic is void — parties are made whole on the
   mainchain instead) and, unless disabled, submit every party's exit. *)
let enter_halt t ~now ~reason =
  set_mode t Halted ~now ~reason;
  t.halted_at <- Some now;
  t.dissolved <- true;
  Chain.Mempool.clear t.mempool;
  t.next_retry_at <- Float.infinity;
  let frontier = Token_bank.last_synced_epoch t.bank in
  (match Token_bank.halt t.bank ~epoch:frontier with
  | Ok () ->
    Faults.Replay_oracle.record_halt t.oracle ~epoch:frontier;
    twin_op t (fun tw -> Twin.bank_halt tw ~epoch:frontier);
    dur_record t (Durable.Record.Op (Durable.Record.Halt { epoch = frontier }))
  | Error rejection ->
    Log.warn ~scope ~t:now
      ~fields:
        [ ("reason", Json.String (Token_bank.rejection_to_string rejection)) ]
      "halt refused by the bank");
  if t.cfg.Config.emergency_exit then
    Array.iter (fun u -> submit_exit t u ~at:now) t.users

(* While Halted, each epoch boundary retries the reconciliation: the
   pending certified summaries are replayed wholesale against the frozen
   bank, netting out the parties that already exited. The submission is
   subject to the same starvation window as the syncs. *)
let submit_reconcile t ~epoch ~at =
  let pending = pending_signed t in
  if pending <> [] && not t.reconcile_inflight then begin
    if Faults.Fault_plan.sync_starved t.plan ~epoch then
      Log.warn ~scope ~t:at
        ~fields:[ ("epoch", Json.Int epoch) ]
        "reconcile submission starved (quorum-starvation window)"
    else begin
      t.reconcile_inflight <- true;
      let size =
        List.fold_left (fun acc (p, _) -> acc + Sync_payload.abi_size p) 0 pending
      in
      Eth.submit t.eth ~at
        { Eth.label = "reconcile"; size_bytes = size;
          gas = estimate_sync_gas (List.map fst pending);
          flow_txs = 1; tag = None;
          execute =
            Some
              (fun _height ->
                t.reconcile_inflight <- false;
                let time = Eth.now t.eth in
                match Token_bank.reconcile t.bank ~signed:pending with
                | Ok r ->
                  t.reconciliation <- Some r;
                  t.recovered_at <- Some time;
                  Faults.Replay_oracle.record_reconcile t.oracle pending;
                  twin_op t (fun tw -> Twin.bank_reconcile tw pending);
                  dur_record t
                    (Durable.Record.Op (Durable.Record.Reconcile pending));
                  Tmetrics.inc ~by:r.Token_bank.rec_users_applied
                    t.tele.c_reconcile_applied;
                  Tmetrics.inc ~by:r.Token_bank.rec_users_voided
                    t.tele.c_reconcile_voided;
                  Tmetrics.add_gauge t.tele.g_reconcile_voided0
                    (U256.to_float r.Token_bank.rec_voided0);
                  Tmetrics.add_gauge t.tele.g_reconcile_voided1
                    (U256.to_float r.Token_bank.rec_voided1);
                  Log.info ~scope ~t:time
                    ~fields:
                      [ ("epochs",
                         Json.String
                           (String.concat ","
                              (List.map string_of_int r.Token_bank.rec_epochs)));
                        ("users_applied", Json.Int r.Token_bank.rec_users_applied);
                        ("users_voided", Json.Int r.Token_bank.rec_users_voided) ]
                    "reconciliation applied: bank un-halted";
                  set_mode t Recovering ~now:time
                    ~reason:"pending summaries reconciled"
                | Error rejection ->
                  Log.warn ~scope ~t:time
                    ~fields:
                      [ ("reason",
                         Json.String (Token_bank.rejection_to_string rejection)) ]
                    "reconciliation failed on chain") }
    end
  end

(* The per-epoch watchdog tick: run the cross-layer audit, then drive
   the operating-mode machine from its verdicts plus the sync-stall and
   retry pressure. "Stall" counts summary epochs the bank is behind the
   wall clock; the steady-state pipeline depth is one epoch. *)
let watchdog_tick t ~epoch:e ~now ~committee_live =
  let report =
    Monitor.audit t.monitor ~epoch:e ~now ~bank:t.bank ~pool:t.pool
      ~last_summary_epoch:t.last_summary_epoch ~pending:(pending_signed t)
      ~deposit_horizon:t.deposits_submitted_until
      ~degraded_signing_streak:t.signing_streak ~committee_live
  in
  let w = t.cfg.Config.watchdog in
  let stall = e - 1 - Token_bank.last_synced_epoch t.bank in
  let fatal = Monitor.has_fatal report in
  let degraded_violation =
    List.exists
      (fun v -> v.Monitor.v_severity = Monitor.Degraded)
      report.Monitor.r_violations
  in
  match t.mode with
  | Normal | Degraded ->
    if fatal then enter_halt t ~now ~reason:"monitor: fatal invariant violation"
    else if stall >= w.Config.wd_stall_halted then
      enter_halt t ~now
        ~reason:(Printf.sprintf "sync stalled for %d epochs" stall)
    else if t.retry_attempt >= w.Config.wd_retry_halted then
      enter_halt t ~now
        ~reason:(Printf.sprintf "sync retries exhausted (%d)" t.retry_attempt)
    else begin
      let degrade_reason =
        if degraded_violation then Some "monitor: degraded violation"
        else if stall >= w.Config.wd_stall_degraded then
          Some (Printf.sprintf "sync stalled for %d epochs" stall)
        else if t.retry_attempt >= w.Config.wd_retry_degraded then
          Some (Printf.sprintf "%d consecutive sync retries" t.retry_attempt)
        else if t.signing_streak >= w.Config.wd_signing_streak then
          Some
            (Printf.sprintf "%d consecutive degraded-quorum signings"
               t.signing_streak)
        else None
      in
      match degrade_reason with
      | Some reason -> set_mode t Degraded ~now ~reason
      | None ->
        if
          t.mode = Degraded && stall <= 1
          && t.retry_attempt < w.Config.wd_retry_degraded
        then set_mode t Normal ~now ~reason:"stall cleared; audit clean"
    end
  | Halted -> submit_reconcile t ~epoch:e ~at:now
  | Recovering ->
    if report.Monitor.r_violations = [] then
      set_mode t Normal ~now ~reason:"clean audit after reconciliation"

(* ------------------------------------------------------------------ *)
(* The state twin: op capture, fault injection, epoch-boundary audit   *)
(* ------------------------------------------------------------------ *)

(* Per-transaction op capture, fired by the processor tap after every
   attempt — a rejected swap has already mutated pool state before the
   router's slippage check, so rejected attempts are captured too (with
   a "!rejected" label suffix). Drains the pool's per-op write set and
   records the after-images of everything the transaction touched. *)
let twin_tx_tap t tw deposits ~label ~user ~ok =
  let wpos, wticks = Uniswap.Pool.drain_op_writes t.pool in
  let label = if ok then label else label ^ "!rejected" in
  Twin.record tw ~label
    ((Twin.Dep_row user, Sidechain.Deposits.row_image deposits user)
     :: (Twin.Pool_scalars, Some (Durable.State_codec.pool_bytes t.pool))
     :: (List.map
           (fun pid ->
             (Twin.Pool_pos pid, Uniswap.Pool.position_bytes t.pool pid))
           wpos
        @ List.map
            (fun k -> (Twin.Pool_tick k, Uniswap.Pool.tick_bytes t.pool k))
            wticks))

(* Summary construction reads fee state through the pool, which marks
   position writes (fee checkpoint updates). Record them as one op so
   the audit window stays closed over every legitimate write. *)
let twin_record_summary_touch t tw =
  let wpos, wticks = Uniswap.Pool.drain_op_writes t.pool in
  match (wpos, wticks) with
  | [], [] -> ()
  | _ ->
    Twin.record tw ~label:"summary.build"
      ((Twin.Pool_scalars, Some (Durable.State_codec.pool_bytes t.pool))
       :: (List.map
             (fun pid ->
               (Twin.Pool_pos pid, Uniswap.Pool.position_bytes t.pool pid))
             wpos
          @ List.map
              (fun k -> (Twin.Pool_tick k, Uniswap.Pool.tick_bytes t.pool k))
              wticks))

(* Silent state corruption: a seeded bit-flip landed directly in a flat
   store behind the system's back — no transaction, no log record. Only
   meaningful when the twin is armed to catch it. The flip lands on the
   audit surface (dirty marks) but on no op's write set, so the audit
   sees a key the twin never captured — or captured differently. *)
let inject_corruption t ~deposits ~epoch ~round =
  match t.twin with
  | None -> ()
  | Some _ ->
    (match Faults.Fault_plan.corrupt_state t.plan ~epoch ~round with
    | None -> ()
    | Some (target, index, bit) ->
      let landed =
        match target with
        | Faults.Fault_plan.Deposit_row ->
          (match deposits with
          | None -> None
          | Some d ->
            Option.map
              (fun u -> "dep:" ^ Address.to_hex u)
              (Sidechain.Deposits.corrupt_bit d ~index ~bit))
        | Faults.Fault_plan.Position_slab ->
          Option.map
            (fun pid -> "bank.pos:" ^ Chain.Ids.Position_id.to_hex pid)
            (Tokenbank.Pos_store.corrupt_bit
               (Token_bank.positions_store t.bank) ~index ~bit)
        | Faults.Fault_plan.Pool_tick ->
          Option.map
            (fun k -> "tick:" ^ string_of_int k)
            (Uniswap.Pool.corrupt_tick_bit t.pool ~index ~bit)
      in
      match landed with
      | None -> ()   (* the selected store was empty; nothing flipped *)
      | Some key ->
        let label = Faults.Fault_plan.corruption_target_label target in
        Faults.Fault_plan.note t.plan ("state.corruption." ^ label) 1;
        t.twin_injections <- (epoch, key) :: t.twin_injections;
        Log.warn ~scope ~t:(Eth.now t.eth)
          ~fields:
            [ ("epoch", Json.Int epoch); ("round", Json.Int round);
              ("target", Json.String label); ("key", Json.String key);
              ("bit", Json.Int bit) ]
          "state corruption injected")

(* The epoch-boundary differential audit: byte-compare the twin's
   shadow against the live flat stores over exactly the keys written
   this window (by ops or by the live side's own dirty marks), then
   seal the epoch and clear the live audit surfaces. Divergence is
   forensically logged, surfaces through the monitor as a Degraded
   violation, and a repeat halts the system — a corrupted store must
   never reach the mainchain twice. *)
let twin_audit_epoch t ~deposits ~epoch ~now =
  match t.twin with
  | None -> ()
  | Some tw ->
    let live =
      { Twin.live_dep =
          (fun u ->
            match deposits with
            | Some d -> Sidechain.Deposits.row_image d u
            | None -> None);
        live_dep_dirty =
          (fun () ->
            match deposits with
            | Some d -> Sidechain.Deposits.dirty_users d
            | None -> []);
        live_pool_pos = (fun pid -> Uniswap.Pool.position_bytes t.pool pid);
        live_pool_tick = (fun k -> Uniswap.Pool.tick_bytes t.pool k);
        live_pool_writes = (fun () -> Uniswap.Pool.audit_writes t.pool);
        live_pool_scalars = (fun () -> Durable.State_codec.pool_bytes t.pool);
        live_bank_meta = (fun () -> Durable.State_codec.bank_meta_bytes t.bank);
        live_bank_pos =
          (fun pid ->
            Tokenbank.Pos_store.row_image (Token_bank.positions_store t.bank)
              pid);
        live_bank_dirty =
          (fun () ->
            Tokenbank.Pos_store.dirty_ids (Token_bank.positions_store t.bank));
      }
    in
    let reports = Twin.audit tw ~epoch live in
    Uniswap.Pool.clear_audit_writes t.pool;
    Tokenbank.Pos_store.clear_dirty (Token_bank.positions_store t.bank);
    (match deposits with
    | Some d -> Sidechain.Deposits.clear_dirty d
    | None -> ());
    Tmetrics.inc t.tele.c_twin_audits;
    (match reports with
    | [] -> t.twin_divergence_streak <- 0
    | _ :: _ ->
      t.twin_reports <- List.rev_append reports t.twin_reports;
      t.twin_divergence_streak <- t.twin_divergence_streak + 1;
      Tmetrics.inc ~by:(List.length reports) t.tele.c_twin_divergences;
      List.iter
        (fun r ->
          Log.error ~scope ~t:now
            ~fields:[ ("report", Json.String (Twin.report_to_string r)) ]
            "twin divergence")
        reports;
      Monitor.record_external t.monitor ~now ~epoch ~severity:Monitor.Degraded
        ~layer:Monitor.Twin ~check:"twin.divergence"
        ~detail:(Twin.report_to_string (List.hd reports));
      if not t.dissolved then begin
        if t.twin_divergence_streak >= 2 then
          enter_halt t ~now ~reason:"twin: repeated state divergence"
        else set_mode t Degraded ~now ~reason:"twin: state divergence detected"
      end)

(* ------------------------------------------------------------------ *)
(* The main loop                                                       *)
(* ------------------------------------------------------------------ *)

let run ?sink ?durable cfg =
  let t = create ?sink ?durable cfg in
  let tele = t.tele in
  (* Whatever recovery found wrong on disk — rejected snapshots, torn
     WAL tails — surfaces as durability violations before the run
     starts. Warning severity: the data was recovered or healed, and the
     watchdog only reacts to audit-report violations. *)
  (match t.durable with
  | Some s ->
    List.iter
      (fun (check, detail) ->
        Monitor.record_external t.monitor ~now:0.0 ~epoch:0
          ~severity:Monitor.Warning ~layer:Monitor.Durability ~check ~detail)
      (Durable.Recovery.notes (Durable.Session.report s))
  | None -> ());
  let committee =
    if cfg.Config.message_level_consensus then
      Some
        (Sidechain.Committee.create
           ~rng:(Rng.split t.rng_net "committee-consensus")
           ~members:(Stdlib.min cfg.Config.committee_size 25)
           ~max_faulty:(Stdlib.min cfg.Config.max_faulty 8)
           ~delta:(2.0 *. cfg.Config.consensus.Consensus.Latency_model.mean_delay)
           ~timeout:(cfg.Config.sc_round_duration /. 4.0))
    else None
  in
  let spr = cfg.Config.sc_rounds_per_epoch in
  let b_t = cfg.Config.sc_round_duration in
  let epoch_dur = Config.epoch_duration cfg in
  let epoch = ref 0 in
  let continue = ref true in
  Chain.Mempool.push t.mempool (genesis_mint_tx t);
  while !continue do
    let e = !epoch in
    let epoch_start = float_of_int e *. epoch_dur in
    let lost = Faults.Fault_plan.committee_lost t.plan ~epoch:e in
    if not (t.dissolved || lost) then begin
      elect_committee t ~epoch:e;
      match t.committees with
      | { epoch = ce; committee = members; leader } :: _ when ce = e ->
        Log.debug ~scope ~t:epoch_start
          ~fields:
            [ ("epoch", Json.Int e); ("committee", Json.Int (List.length members));
              ("leader", Json.Int leader) ]
          "epoch started: committee elected"
      | _ -> ()
    end;
    Eth.advance_to t.eth epoch_start;
    (* Gas-limit congestion window: congested epochs mine under a reduced
       limit, restored at the next non-congested epoch start. *)
    if Faults.Fault_plan.congested t.plan ~epoch:e then begin
      let limit = (Faults.Fault_plan.spec t.plan).Faults.Fault_plan.mainchain
                    .Faults.Fault_plan.congestion_gas_limit in
      if limit > 0 && limit < cfg.Config.mc_gas_limit then begin
        Eth.set_gas_limit t.eth limit;
        Log.warn ~scope ~t:epoch_start
          ~fields:[ ("epoch", Json.Int e); ("gas_limit", Json.Int limit) ]
          "fault: gas-limit congestion window"
      end
    end
    else if Eth.gas_limit t.eth <> cfg.Config.mc_gas_limit then
      Eth.set_gas_limit t.eth cfg.Config.mc_gas_limit;
    settle_confirmed t;
    sample_growth t ~epoch:e ~now:epoch_start;
    watchdog_tick t ~epoch:e ~now:epoch_start
      ~committee_live:(not (t.dissolved || lost));
    (* The tick may just have halted and dissolved the sidechain. *)
    let committee_dead = t.dissolved || lost in
    if committee_dead then begin
      (* Idle epoch: no committee, so no meta/summary blocks. The
         mainchain keeps producing blocks, and deposits / retries /
         reconciliation submissions still pump (until dissolution). *)
      for r = 0 to spr - 1 do
        dur_crash t ~epoch:e ~round:r;
        let round = (e * spr) + r in
        let t_round = epoch_start +. (float_of_int r *. b_t) in
        Eth.advance_to t.eth t_round;
        inject_chaos_reorgs t;
        settle_confirmed t;
        maybe_retry_sync t ~now:t_round;
        if not t.dissolved then begin
          maybe_submit_deposits t ~now:t_round;
          if e < cfg.Config.epochs then begin
            (* Parties keep issuing: the backlog they accumulate is
               voided at dissolution and settled by the exits. *)
            let generated =
              Traffic.iter_round t.traffic ~round ~time:t_round
                (Chain.Mempool.push t.mempool)
            in
            Tmetrics.inc ~by:generated tele.c_generated
          end
        end;
        Tmetrics.set tele.g_mempool_bytes
          (float_of_int (Chain.Mempool.byte_size t.mempool))
      done;
      (* Even an idle epoch gets its audit: bank ops (exits, reconciles)
         still flowed, and the twin must confirm nothing else moved. *)
      twin_audit_epoch t ~deposits:None ~epoch:e
        ~now:(float_of_int (e + 1) *. epoch_dur)
    end
    else begin
    let snapshot = Token_bank.snapshot t.bank ~epoch:e in
    let audit_entry =
      if cfg.Config.self_audit then begin
        let entry = (e, Uniswap.Pool.clone t.pool, snapshot, ref [], ref None) in
        t.audit_trail <- entry :: t.audit_trail;
        Some entry
      end
      else None
    in
    let processor =
      (* Positions in still-unapplied summaries stay "changed" relative
         to the bank snapshot even if this epoch never touches them: feed
         them to the incremental summary builder as carry. *)
      let pending = pending_signed t in
      let carry =
        List.concat_map
          (fun ((p : Sync_payload.t), _) ->
            List.map
              (fun (e : Sync_payload.position_entry) -> e.Sync_payload.pos_id)
              p.Sync_payload.positions)
          pending
      in
      let user_carry =
        List.concat_map
          (fun ((p : Sync_payload.t), _) ->
            List.map
              (fun (u : Sync_payload.user_entry) -> u.Sync_payload.user)
              p.Sync_payload.users)
          pending
      in
      Processor.begin_epoch ~pool:t.pool ~snapshot ~carry ~user_carry
        ~verify_signatures:cfg.Config.verify_signatures ()
    in
    (* Arm the twin's op capture for the epoch. The fresh deposit table
       marks every row dirty at construction; those rows are derived
       from the bank snapshot the sync path already audits, so they are
       not window ops — clear the marks before the first transaction
       lands and audit only rows the epoch actually writes. *)
    (match t.twin with
    | Some tw ->
      let deposits = Processor.deposits processor in
      Sidechain.Deposits.clear_dirty deposits;
      Processor.set_tap processor (twin_tx_tap t tw deposits)
    | None -> ());
    (* Durable snapshot at the epoch boundary (the deposits view is the
       processor's, i.e. post-begin_epoch). Committee-dead epochs skip
       snapshots; the cadence is identical in an uninterrupted run, so
       resume-time verification lines up byte-for-byte. *)
    (match t.durable with
    | Some s when Durable.Session.snapshot_due s ~epoch:e ->
      Durable.Session.snapshot s ~epoch:e
        ~sections:
          (Durable.State_codec.sections ~bank:t.bank ~pool:t.pool
             ~deposits:(Processor.deposits processor)
             ~pending:(pending_signed t))
    | _ -> ());
    for r = 0 to spr - 1 do
      dur_crash t ~epoch:e ~round:r;
      let round = (e * spr) + r in
      let t_round = epoch_start +. (float_of_int r *. b_t) in
      (* In the last round of the epoch the committee mines the
         summary-block instead of a meta-block (chainBoost/ammBoost block
         structure), so no transactions are processed in that round. *)
      let summary_round = r = spr - 1 in
      Eth.advance_to t.eth t_round;
      (* Interruption: a mainchain fork abandons the block carrying a
         configured epoch's sync while it is still unconfirmed. *)
      List.iter
        (function
          | Config.Mainchain_rollback re when re < e -> inject_rollback t ~epoch:re
          | Config.Mainchain_rollback _ | Config.Silent_sync_leader _
          | Config.Invalid_sync _ | Config.Censoring_committee _ -> ())
        cfg.Config.interruptions;
      inject_chaos_reorgs t;
      settle_confirmed t;
      maybe_retry_sync t ~now:t_round;
      maybe_submit_deposits t ~now:t_round;
      if e < cfg.Config.epochs then begin
        let generated =
          Traffic.iter_round t.traffic ~round ~time:t_round
            (Chain.Mempool.push t.mempool)
        in
        Tmetrics.inc ~by:generated tele.c_generated;
        Trace.complete tele.tr
          ~args:
            [ ("generated", Json.Int generated); ("round", Json.Int round) ]
          ~name:"traffic" ~ts:t_round ~dur:(0.35 *. b_t) ()
      end;
      Tmetrics.set tele.g_mempool_bytes
        (float_of_int (Chain.Mempool.byte_size t.mempool));
      (* The committee drains the queue up to the meta-block capacity and
         processes with the AMM logic; only valid transactions enter the
         block. *)
      let censoring =
        List.exists
          (function Config.Censoring_committee ce -> ce = e | _ -> false)
          cfg.Config.interruptions
      in
      let candidates =
        if summary_round then []
        else Chain.Mempool.take_up_to t.mempool ~max_bytes:cfg.Config.meta_block_bytes
      in
      (* A censoring committee omits the victim's transactions; they stay
         pending (the user rebroadcasts) and the next epoch's committee
         processes them - the Lemma 2 liveness argument. *)
      let candidates =
        if not censoring then candidates
        else begin
          let victim = t.users.(0).Party.address in
          let kept, censored =
            List.partition
              (fun tx -> not (Address.equal tx.Tx.issuer victim))
              candidates
          in
          List.iter (fun tx -> Chain.Mempool.push t.mempool tx) censored;
          kept
        end
      in
      let included =
        List.filter
          (fun tx ->
            match Processor.process processor ~current_round:round tx with
            | Ok () -> true
            | Error _ -> false)
          candidates
      in
      if e < cfg.Config.epochs then
        t.processed_in_window <- t.processed_in_window + List.length included;
      (* Agreement on the block: message-level PBFT when configured,
         otherwise the closed-form latency model. *)
      let consensus_latency, view_changes =
        match committee with
        | Some c ->
          let digest =
            Amm_crypto.Sha256.concat
              (Bytes.of_string (Printf.sprintf "round-%d" round)
              :: List.map (fun tx -> Chain.Ids.Tx_id.to_bytes tx.Tx.id) included)
          in
          (* Plan-driven per-round replica faults: crashed members,
             a Byzantine proposer, and message-level network chaos. *)
          let silent =
            Faults.Fault_plan.crashed_members t.plan ~epoch:e ~round
              ~members:(Sidechain.Committee.members c)
              ~max_faulty:(Sidechain.Committee.max_faulty c)
          in
          let invalid_proposer =
            Faults.Fault_plan.byzantine_proposer t.plan ~epoch:e ~round
          in
          let chaos =
            Faults.Fault_plan.net_chaos t.plan ~epoch:e ~round
              ~members:(Sidechain.Committee.members c)
          in
          let o =
            Sidechain.Committee.agree ~silent ~invalid_proposer ?chaos c
              ~block_digest:digest ~horizon:b_t
          in
          ((if o.Sidechain.Committee.decided then o.Sidechain.Committee.latency else b_t),
           o.Sidechain.Committee.view_changes)
        | None ->
          let size =
            Blocks.meta_header_size
            + List.fold_left (fun acc tx -> acc + tx.Tx.wire_size) 0 included
          in
          ( Consensus.Latency_model.consensus_latency cfg.Config.consensus
              ~block_bytes:size,
            0 )
      in
      let meta = Blocks.make_meta ~epoch:e ~round ~view_changes included in
      Telemetry.Histogram.observe tele.h_consensus consensus_latency;
      if not summary_round then begin
        Blocks.append_meta t.sc_chain meta;
        Telemetry.Histogram.observe tele.h_meta_txs
          (float_of_int (List.length included));
        Telemetry.Histogram.observe tele.h_meta_bytes
          (float_of_int meta.Blocks.m_size);
        Trace.complete tele.tr
          ~args:
            [ ("txs", Json.Int (List.length included));
              ("bytes", Json.Int meta.Blocks.m_size);
              ("view_changes", Json.Int view_changes);
              ("consensus_latency", Json.Float consensus_latency) ]
          ~name:"meta-block"
          ~ts:(t_round +. (0.35 *. b_t))
          ~dur:(Float.min consensus_latency (0.65 *. b_t))
          ();
        match audit_entry with
        | Some (_, _, _, metas, _) -> metas := meta :: !metas
        | None -> ()
      end;
      List.iter
        (fun tx ->
          let latency = t_round -. tx.Tx.issued_at +. consensus_latency in
          Metrics.observe t.tx_latency latency;
          Telemetry.Histogram.observe tele.h_tx_latency latency;
          Metrics.note_processed t.payouts ~epoch:e ~issued_at:tx.Tx.issued_at;
          t.counterfactual_bytes <-
            t.counterfactual_bytes
            + Chain.Encoding.sepolia_op_size (Tx.op_of_payload tx.Tx.payload);
          Lifecycle.on_included t.lifecycle
            ~id:(Chain.Ids.Tx_id.to_bytes tx.Tx.id)
            ~cls:(Tx.type_name tx.Tx.payload) ~issued_at:tx.Tx.issued_at
            ~wire:tx.Tx.wire_size ~epoch:e
            ~at:(t_round +. consensus_latency))
        included;
      if Blocks.stored_bytes t.sc_chain > t.max_sc_stored then
        t.max_sc_stored <- Blocks.stored_bytes t.sc_chain;
      (* End of round: a silent corruption may land in a flat store —
         out-of-band, on no transaction's write set. The epoch-boundary
         audit below must catch it. *)
      inject_corruption t ~deposits:(Some (Processor.deposits processor))
        ~epoch:e ~round:r
    done;
    (* Epoch end: summary block, threshold signature, Sync submission. *)
    let epoch_end = float_of_int (e + 1) *. epoch_dur in
    let next_keys = committee_keys t ~epoch:(e + 1) in
    let payload =
      Processor.build_payload processor ~epoch:e ~next_committee_vk:next_keys.vk
    in
    twin_op t (fun tw -> twin_record_summary_touch t tw);
    let keys = committee_keys t ~epoch:e in
    let signature = sign_payload t ~epoch:e keys (Sync_payload.signing_bytes payload) in
    Hashtbl.replace t.signed_payloads e (payload, signature);
    t.last_summary_epoch <- e;
    let s_size = Sidechain.Codec.summary_block_size payload in
    if s_size > t.max_summary_bytes then t.max_summary_bytes <- s_size;
    let n_users = List.length payload.Sync_payload.users in
    t.summary_users_total <- t.summary_users_total + n_users;
    if n_users > t.summary_users_max then t.summary_users_max <- n_users;
    Telemetry.Histogram.observe tele.h_summary_bytes (float_of_int s_size);
    (* The summary round (last of the epoch) splits into summary build
       and threshold signing on the simulated timeline. *)
    let t_summary = epoch_start +. (float_of_int (spr - 1) *. b_t) in
    Trace.complete tele.tr
      ~args:
        [ ("epoch", Json.Int e); ("bytes", Json.Int s_size);
          ("users", Json.Int (List.length payload.Sync_payload.users));
          ("positions", Json.Int (List.length payload.Sync_payload.positions)) ]
      ~name:"summary" ~ts:t_summary ~dur:(0.5 *. b_t) ();
    Trace.complete tele.tr
      ~args:[ ("threshold", Json.Bool cfg.Config.threshold_signing) ]
      ~name:"sign"
      ~ts:(t_summary +. (0.5 *. b_t))
      ~dur:(0.5 *. b_t) ();
    Lifecycle.on_stage t.lifecycle ~epoch:e ~stage:Lifecycle.Summarized
      ~at:t_summary;
    let summary_block =
      { Blocks.s_epoch = e; s_payload = payload; s_size;
        s_rounds_covered = (e * spr, ((e + 1) * spr) - 1) }
    in
    Blocks.append_summary t.sc_chain summary_block;
    (match audit_entry with
    | Some (_, _, _, _, summary_ref) -> summary_ref := Some summary_block
    | None -> ());
    let silent =
      List.exists
        (function Config.Silent_sync_leader se -> se = e | _ -> false)
        cfg.Config.interruptions
      || Faults.Fault_plan.silent_leader t.plan ~epoch:e
    in
    let corrupt =
      (not silent)
      && (List.exists
            (function Config.Invalid_sync se -> se = e | _ -> false)
            cfg.Config.interruptions
         || Faults.Fault_plan.corrupt_sync t.plan ~epoch:e)
    in
    if not silent then submit_sync t ~epoch:e ~at:epoch_end ~corrupt;
    let stats = Processor.stats processor in
    t.processed_total <- t.processed_total + stats.Processor.processed;
    t.rejected_total <- t.rejected_total + stats.Processor.rejected;
    t.swaps <- t.swaps + stats.Processor.swaps;
    t.mints <- t.mints + stats.Processor.mints;
    t.burns <- t.burns + stats.Processor.burns;
    t.collects <- t.collects + stats.Processor.collects;
    record_rejections t stats;
    Tmetrics.inc ~by:stats.Processor.processed tele.c_processed;
    Tmetrics.inc ~by:stats.Processor.rejected tele.c_rejected;
    let reg = tele.sink.Telemetry.Report.metrics in
    Tmetrics.inc ~by:stats.Processor.swaps (Tmetrics.counter reg "txs.swap");
    Tmetrics.inc ~by:stats.Processor.mints (Tmetrics.counter reg "txs.mint");
    Tmetrics.inc ~by:stats.Processor.burns (Tmetrics.counter reg "txs.burn");
    Tmetrics.inc ~by:stats.Processor.collects (Tmetrics.counter reg "txs.collect");
    Trace.complete tele.tr ~cat:"epoch"
      ~args:
        [ ("epoch", Json.Int e); ("processed", Json.Int stats.Processor.processed);
          ("rejected", Json.Int stats.Processor.rejected) ]
      ~name:(Printf.sprintf "epoch-%d" e)
      ~ts:epoch_start ~dur:epoch_dur ();
    Log.info ~scope ~t:epoch_end
      ~fields:
        [ ("epoch", Json.Int e); ("processed", Json.Int stats.Processor.processed);
          ("rejected", Json.Int stats.Processor.rejected);
          ("summary_bytes", Json.Int s_size) ]
      "epoch complete";
    (* The epoch-boundary differential audit: O(written keys) against
       the live flat stores, sealing the epoch for time travel. *)
    twin_audit_epoch t ~deposits:(Some (Processor.deposits processor))
      ~epoch:e ~now:epoch_end
    end;
    (* Stop once generation is done and the queue has drained (the paper
       empties the queues to measure comparable latency). *)
    epoch := e + 1;
    if !epoch >= cfg.Config.epochs && Chain.Mempool.is_empty t.mempool then
      continue := false;
    if !epoch >= cfg.Config.epochs + cfg.Config.max_drain_epochs then continue := false
  done;
  (* Let the final syncs land and confirm. *)
  let final_time =
    (float_of_int !epoch *. epoch_dur) +. (10.0 *. cfg.Config.mc_block_interval)
  in
  Eth.advance_to t.eth final_time;
  (* Recovery passes in case the final epochs were interrupted; bounded
     retries because the plan may also drop the recovery submissions. *)
  if t.mode <> Halted then
    submit_sync t ~epoch:(!epoch - 1) ~at:final_time ~corrupt:false;
  Eth.advance_to t.eth (final_time +. (5.0 *. cfg.Config.mc_block_interval));
  let recovery_tries = ref 0 in
  while
    t.mode <> Halted
    && t.last_summary_epoch >= 0
    && Token_bank.last_synced_epoch t.bank < t.last_summary_epoch
    && !recovery_tries < 5
  do
    incr recovery_tries;
    t.sync_retries <- t.sync_retries + 1;
    Tmetrics.inc t.tele.c_sync_retries;
    submit_sync t ~epoch:t.last_summary_epoch ~at:(Eth.now t.eth) ~corrupt:false;
    Eth.advance_to t.eth (Eth.now t.eth +. (5.0 *. cfg.Config.mc_block_interval))
  done;
  (* Still Halted with certified-but-unapplied summaries: keep trying
     the reconciliation a bounded number of times (the starvation window
     may cover the whole run, in which case the halt is terminal). *)
  let reconcile_tries = ref 0 in
  while t.mode = Halted && pending_signed t <> [] && !reconcile_tries < 5 do
    incr reconcile_tries;
    let now = Eth.now t.eth in
    submit_reconcile t ~epoch:(int_of_float (now /. epoch_dur)) ~at:now;
    Eth.advance_to t.eth (now +. (5.0 *. cfg.Config.mc_block_interval))
  done;
  settle_confirmed t;
  (* Final differential audit over the drain tail: the recovery passes
     above applied more bank ops (syncs, reconciles, exits) outside the
     epoch loop. *)
  twin_audit_epoch t ~deposits:None ~epoch:!epoch ~now:(Eth.now t.eth);
  (* Closing ledger row after the drain: the final state footprint. *)
  sample_growth t ~epoch:!epoch ~now:(Eth.now t.eth);
  (* Custody invariant: bank ERC20 holdings = pool balances + remaining
     (future-epoch) deposits. *)
  let custody_consistent =
    let c0, c1 = Token_bank.total_custody t.bank in
    let p0, p1 =
      match Token_bank.pool t.bank 0 with
      | Some p -> (p.Token_bank.balance0, p.Token_bank.balance1)
      | None -> (U256.zero, U256.zero)
    in
    let rec deposits_sum acc0 acc1 e =
      if e > t.deposits_submitted_until then (acc0, acc1)
      else begin
        let s0, s1 =
          List.fold_left
            (fun (a0, a1) (_, (d0, d1)) -> (U256.add a0 d0, U256.add a1 d1))
            (U256.zero, U256.zero)
            (Token_bank.deposits_for_epoch t.bank ~epoch:e)
        in
        deposits_sum (U256.add acc0 s0) (U256.add acc1 s1) (e + 1)
      end
    in
    let d0, d1 = deposits_sum U256.zero U256.zero 0 in
    U256.equal c0 (U256.add p0 d0) && U256.equal c1 (U256.add p1 d1)
  in
  (* Self-audit: replay every retained epoch and check its summary. *)
  let audit_passed =
    if not cfg.Config.self_audit then None
    else
      Some
        (List.for_all
           (fun (_, pool_at_start, snapshot, metas, summary_ref) ->
             match !summary_ref with
             | None -> false
             | Some summary ->
               Sidechain.Auditor.verify_summary ~pool_at_start ~snapshot
                 ~metas:(List.rev !metas) ~summary
               = Ok ())
           t.audit_trail)
  in
  (* Deterministic result ordering: Hashtbl-derived assoc lists are
     sorted by key so reports and tests never depend on iteration order. *)
  let sorted_assoc l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  (* Differential replay oracle: the live TokenBank must match a fresh
     replica fed the surviving deposit/sync history in order. *)
  let replay_consistent =
    match
      Faults.Replay_oracle.verify ~live:t.bank ~genesis_committee_vk:t.genesis_vk
        ~flash_fee_pips:cfg.Config.fee_pips t.oracle
    with
    | Ok () -> true
    | Error reason ->
      Log.error ~scope ~fields:[ ("reason", Json.String reason) ]
        "differential replay oracle failed";
      false
  in
  let faults_injected = Faults.Fault_plan.injected t.plan in
  let gas_by_label = sorted_assoc (Eth.gas_used_by_label t.eth) in
  let bytes_by_label = sorted_assoc (Eth.bytes_by_label t.eth) in
  let reg = tele.sink.Telemetry.Report.metrics in
  let final_gauge name v = Tmetrics.set (Tmetrics.gauge reg name) v in
  final_gauge "sidechain.cumulative_bytes"
    (float_of_int (Blocks.cumulative_bytes t.sc_chain));
  final_gauge "sidechain.stored_bytes" (float_of_int (Blocks.stored_bytes t.sc_chain));
  final_gauge "sidechain.max_stored_bytes" (float_of_int t.max_sc_stored);
  final_gauge "mainchain.gas_total" (float_of_int (Eth.gas_used_total t.eth));
  final_gauge "mainchain.bytes_total"
    (float_of_int (List.fold_left (fun acc (_, b) -> acc + b) 0 bytes_by_label));
  final_gauge "epochs.applied" (float_of_int (Token_bank.last_synced_epoch t.bank + 1));
  final_gauge "custody.consistent" (if custody_consistent then 1.0 else 0.0);
  final_gauge "replay.consistent" (if replay_consistent then 1.0 else 0.0);
  let exit_list = Token_bank.exits t.bank in
  let exits_served = List.length exit_list in
  let exit_claims0, exit_claims1 =
    List.fold_left
      (fun (a0, a1) (c : Token_bank.exit_claim) ->
        ( U256.add a0 (U256.add c.Token_bank.claim0 c.Token_bank.refund0),
          U256.add a1 (U256.add c.Token_bank.claim1 c.Token_bank.refund1) ))
      (U256.zero, U256.zero) exit_list
  in
  let exit_gas_mean =
    if exits_served = 0 then 0.0
    else
      float_of_int
        (List.fold_left
           (fun acc (c : Token_bank.exit_claim) ->
             acc + Gas.total c.Token_bank.exit_gas)
           0 exit_list)
      /. float_of_int exits_served
  in
  let exit_conservation = Token_bank.exit_conservation_ok t.bank in
  let durability =
    match t.durable with
    | Some s ->
      Durable.Session.finish s;
      Durable.Session.stats s
    | None -> []
  in
  List.iter (fun (name, v) -> final_gauge name (float_of_int v)) durability;
  final_gauge "watchdog.final_mode" (float_of_int (mode_rank t.mode));
  final_gauge "exit.conservation" (if exit_conservation then 1.0 else 0.0);
  List.iter
    (fun (label, n) -> Tmetrics.inc ~by:n (Tmetrics.counter reg ("faults." ^ label)))
    faults_injected;
  let twin_audits, twin_divergences =
    match t.twin with
    | Some tw -> (Twin.audits_run tw, Twin.divergences tw)
    | None -> (0, 0)
  in
  let twin_consistent = twin_divergences = 0 in
  (* twin.audits / twin.divergences are live counters in [tele]. *)
  final_gauge "twin.consistent" (if twin_consistent then 1.0 else 0.0);
  { cfg;
    generated = Traffic.generated t.traffic;
    processed = t.processed_total;
    rejected = t.rejected_total;
    throughput = float_of_int t.processed_in_window /. Config.generation_duration cfg;
    mean_tx_latency = Metrics.mean t.tx_latency;
    mean_payout_latency = Metrics.payout_mean t.payouts;
    payouts_settled = Metrics.payout_count t.payouts;
    sc_cumulative_bytes = Blocks.cumulative_bytes t.sc_chain;
    sc_stored_bytes = Blocks.stored_bytes t.sc_chain;
    sc_max_stored_bytes = t.max_sc_stored;
    max_summary_block_bytes = t.max_summary_bytes;
    summary_user_entries = t.summary_users_total;
    summary_user_entries_max = t.summary_users_max;
    mc_tx_bytes = List.fold_left (fun acc (_, b) -> acc + b) 0 bytes_by_label;
    mc_gas_total = Eth.gas_used_total t.eth;
    mc_gas_by_label = gas_by_label;
    mc_bytes_by_label = bytes_by_label;
    deposit_gas_mean =
      (match List.assoc_opt "deposit" gas_by_label with
      | Some g ->
        let n =
          match List.assoc_opt "deposit" (Eth.latencies_by_label t.eth) with
          | Some l -> List.length l
          | None -> 1
        in
        float_of_int g /. float_of_int (Stdlib.max 1 n)
      | None -> 0.0);
    deposit_latency_mean = Option.value ~default:0.0 (Eth.mean_latency t.eth "deposit");
    sync_latency_mean = Option.value ~default:0.0 (Eth.mean_latency t.eth "sync");
    last_sync_receipt = (match t.sync_receipts with r :: _ -> Some r | [] -> None);
    sync_count = List.length t.sync_receipts;
    epochs_run = !epoch;
    epochs_applied = Token_bank.last_synced_epoch t.bank + 1;
    mass_syncs = t.mass_syncs;
    sync_retries = t.sync_retries;
    degraded_signings = t.degraded_signings;
    corrupted_partials = t.corrupted_partials;
    rollbacks = t.rollback_count;
    faults_injected;
    replay_consistent;
    rejection_reasons =
      sorted_assoc (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.rejections []);
    custody_consistent;
    audit_passed;
    final_mode = mode_name t.mode;
    mode_transitions =
      List.rev_map (fun (ts, m) -> (ts, mode_name m)) t.mode_transitions;
    monitor_audits = Monitor.audits_run t.monitor;
    monitor_violations = Monitor.violation_totals t.monitor;
    durability;
    exits_served;
    exit_claims0;
    exit_claims1;
    exit_gas_mean;
    exit_conservation;
    halted_at = t.halted_at;
    recovery_latency =
      (match (t.halted_at, t.recovered_at) with
      | Some h, Some r -> Some (r -. h)
      | _ -> None);
    reconciliation = t.reconciliation;
    committees = List.rev t.committees;
    swaps = t.swaps; mints = t.mints; burns = t.burns; collects = t.collects;
    growth = t.growth;
    lifecycle_sampled = Lifecycle.sampled_count t.lifecycle;
    lifecycle_seen = Lifecycle.seen_count t.lifecycle;
    twin_audits;
    twin_divergences;
    twin_consistent;
    twin_reports = List.rev t.twin_reports;
    twin_injections = List.rev t.twin_injections;
    twin_view = Option.map Twin.view t.twin }
