(** Experiment configuration. The defaults reproduce the paper's setup
    (§6): 11 epochs of 10 mainchain rounds (30 sidechain rounds of 4 s),
    12 s mainchain blocks, 1 MB meta-blocks, 500-miner committees,
    100 users, and the measured Uniswap 2023 traffic distribution. *)

type distribution = {
  swap_pct : float;
  mint_pct : float;
  burn_pct : float;
  collect_pct : float;
}

val uniswap_distribution : distribution
(** Table 8, year 2023: 93.19 / 2.14 / 2.38 / 2.27. *)

(** Faults injected into a run (§4.2 "Handling interruptions"). *)
type interruption =
  | Silent_sync_leader of int
      (** the leader of this epoch never submits the Sync call *)
  | Invalid_sync of int
      (** the leader submits corrupted Sync inputs for this epoch *)
  | Mainchain_rollback of int
      (** a fork abandons the block carrying this epoch's sync *)
  | Censoring_committee of int
      (** this epoch's committee omits the first user's transactions
          (Lemma 2's DoS threat); committee rotation restores liveness *)

(** Liveness-watchdog thresholds ({!System}'s operating-mode machine).
    "Stall" counts produced-but-unapplied summary epochs at an epoch
    boundary; the steady-state pipeline depth is one epoch of lag, so
    meaningful thresholds start at 2. *)
type watchdog = {
  wd_stall_degraded : int;   (** stalled epochs before Normal → Degraded *)
  wd_stall_halted : int;     (** stalled epochs before → Halted *)
  wd_retry_degraded : int;   (** consecutive Sync retries before Degraded *)
  wd_retry_halted : int;     (** consecutive Sync retries before Halted *)
  wd_signing_streak : int;   (** consecutive degraded-quorum signings before
                                 Degraded *)
}

val default_watchdog : watchdog

type t = {
  seed : string;                   (** all randomness derives from this *)
  epochs : int;                    (** traffic-generation epochs *)
  sc_rounds_per_epoch : int;
  sc_round_duration : float;       (** seconds *)
  mc_block_interval : float;       (** seconds *)
  meta_block_bytes : int;
  mc_gas_limit : int;
  committee_size : int;
  miners : int;
  max_faulty : int;                (** f for the PBFT quorums *)
  users : int;
  lp_fraction : float;             (** users that also provide liquidity *)
  daily_volume : int;              (** V_D *)
  distribution : distribution;
  fee_pips : int;
  tick_spacing : int;
  verify_signatures : bool;        (** verify user signatures when processing *)
  threshold_signing : bool;        (** full DKG + t-of-n BLS for syncs; false =
                                       pre-generated committee key (the
                                       paper's PoC shortcut) *)
  message_level_consensus : bool;  (** run real PBFT per round instead of the
                                       latency model (small committees) *)
  self_audit : bool;               (** retain per-epoch state and replay every
                                       summary through {!Sidechain.Auditor} at
                                       the end of the run (small runs) *)
  twin_audit : bool;               (** run the state twin: a shadow copy of
                                       bank + pool + deposit state advanced from
                                       the live op stream and byte-compared
                                       against the flat stores at every epoch
                                       boundary (O(Δ) differential audit, with
                                       divergence bisection and watchdog
                                       escalation); on by default *)
  sign_transactions : bool;        (** generate real BLS signatures on traffic *)
  swap_deadline_rounds : int;      (** swap validity window in sc rounds *)
  max_positions_per_lp : int;      (** open-position cap per LP — bounds the
                                       summary size by the user population,
                                       the invariant behind Table 5 *)
  deposit_per_epoch : Amm_math.U256.t;  (** per token, per user, per epoch *)
  interruptions : interruption list;
  faults : Faults.Fault_plan.spec; (** probabilistic fault plan (chaos runs);
                                       {!Faults.Fault_plan.none} injects
                                       nothing *)
  mc_confirmations : int;          (** blocks burying a mainchain tx before it
                                       is final; raise for deeper-reorg chaos *)
  max_drain_epochs : int;          (** cap on queue-drain epochs after generation *)
  watchdog : watchdog;
  emergency_exit : bool;           (** serve per-party exits when Halted; false
                                       leaves the bank frozen awaiting
                                       reconciliation *)
  consensus : Consensus.Latency_model.params;
}

val default : t

val arrivals_per_round : t -> int
(** ρ = ⌈V_D · b_t / 86400⌉, the paper's constant arrival rate (§6). *)

val epoch_duration : t -> float
val generation_duration : t -> float
