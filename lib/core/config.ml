(* Experiment configuration. Defaults follow the paper's setup (§6):
   11 epochs of 10 mainchain rounds each, 3 sidechain rounds per mainchain
   round (30 sc rounds/epoch), 4 s sidechain rounds, 12 s mainchain
   blocks, 1 MB meta-blocks, 500-miner committees, 100 users, and the
   measured Uniswap 2023 traffic distribution. *)

type distribution = {
  swap_pct : float;
  mint_pct : float;
  burn_pct : float;
  collect_pct : float;
}

(* Table 8, year 2023. *)
let uniswap_distribution =
  { swap_pct = 93.19; mint_pct = 2.14; burn_pct = 2.38; collect_pct = 2.27 }

type interruption =
  | Silent_sync_leader of int
      (* the leader of this epoch never submits the Sync call *)
  | Invalid_sync of int
      (* the leader submits corrupted Sync inputs for this epoch *)
  | Mainchain_rollback of int
      (* a fork abandons the mainchain block(s) right after this epoch's sync *)
  | Censoring_committee of int
      (* this epoch's committee omits transactions from the first user
         (Lemma 2's DoS threat); rotation restores liveness next epoch *)

(* Liveness-watchdog thresholds. "Stall" is the number of produced-but-
   unapplied summary epochs at an epoch boundary; one epoch of lag is the
   steady-state pipeline depth, so thresholds start at 2. *)
type watchdog = {
  wd_stall_degraded : int;     (* stalled epochs before Normal → Degraded *)
  wd_stall_halted : int;       (* stalled epochs before → Halted *)
  wd_retry_degraded : int;     (* consecutive sync retries before Degraded *)
  wd_retry_halted : int;       (* consecutive sync retries before Halted *)
  wd_signing_streak : int;     (* consecutive degraded-quorum signings
                                  before Degraded *)
}

let default_watchdog =
  { wd_stall_degraded = 3;
    wd_stall_halted = 6;
    wd_retry_degraded = 4;
    wd_retry_halted = 8;
    wd_signing_streak = 4 }

type t = {
  seed : string;
  epochs : int;                    (* generation epochs (queues drain after) *)
  sc_rounds_per_epoch : int;
  sc_round_duration : float;       (* seconds *)
  mc_block_interval : float;       (* seconds *)
  meta_block_bytes : int;
  mc_gas_limit : int;
  committee_size : int;
  miners : int;
  max_faulty : int;                (* f for the PBFT quorums *)
  users : int;
  lp_fraction : float;             (* users that also provide liquidity *)
  daily_volume : int;              (* V_D *)
  distribution : distribution;
  fee_pips : int;
  tick_spacing : int;
  verify_signatures : bool;        (* verify user tx signatures when processing *)
  threshold_signing : bool;        (* full DKG + threshold signing for syncs
                                      (tests/examples); false = pre-generated
                                      committee key, as the paper's PoC *)
  message_level_consensus : bool;  (* run real PBFT per round instead of the
                                      latency model; for small committees *)
  self_audit : bool;               (* retain per-epoch audit state and replay
                                      every summary at the end of the run *)
  twin_audit : bool;               (* run the state twin: per-epoch O(Δ)
                                      differential audit of deposits, pool and
                                      bank state, with divergence bisection
                                      wired into the watchdog *)
  sign_transactions : bool;        (* generate real BLS signatures on traffic *)
  swap_deadline_rounds : int;      (* swap validity window in sc rounds *)
  max_positions_per_lp : int;      (* open-position cap per LP: keeps the
                                      summary size bounded by the user
                                      population (Table 5's invariant) *)
  deposit_per_epoch : Amm_math.U256.t;  (* per token, per user, per epoch *)
  interruptions : interruption list;
  faults : Faults.Fault_plan.spec; (* probabilistic fault plan (chaos runs);
                                      Fault_plan.none injects nothing *)
  mc_confirmations : int;          (* blocks burying a tx before it is final;
                                      raise for deeper-reorg chaos runs *)
  max_drain_epochs : int;          (* cap on queue-drain epochs after generation *)
  watchdog : watchdog;
  emergency_exit : bool;           (* serve per-party exits when Halted; false
                                      leaves the bank frozen awaiting
                                      reconciliation *)
  consensus : Consensus.Latency_model.params;
}

let default =
  { seed = "ammboost";
    epochs = 11;
    sc_rounds_per_epoch = 30;
    sc_round_duration = 4.0;
    mc_block_interval = 12.0;
    meta_block_bytes = 1_000_000;
    mc_gas_limit = 30_000_000;
    committee_size = 500;
    miners = 1000;
    max_faulty = 166;
    users = 100;
    lp_fraction = 0.2;
    daily_volume = 500_000;
    distribution = uniswap_distribution;
    fee_pips = 3000;
    tick_spacing = 60;
    verify_signatures = false;
    threshold_signing = false;
    message_level_consensus = false;
    self_audit = false;
    twin_audit = true;
    sign_transactions = false;
    swap_deadline_rounds = 10_000;
    max_positions_per_lp = 4;
    deposit_per_epoch = Amm_math.U256.of_string "10000000000000000000000"; (* 1e22 *)
    interruptions = [];
    faults = Faults.Fault_plan.none;
    mc_confirmations = 1;
    max_drain_epochs = 200;
    watchdog = default_watchdog;
    emergency_exit = true;
    consensus =
      { Consensus.Latency_model.committee_size = 500; mean_delay = 0.011;
        bandwidth_bytes = 125_000_000.0 } }

(* Arrival rate per sidechain round (§6): ρ = ⌈V_D · b_t / 86400⌉. *)
let arrivals_per_round t =
  int_of_float
    (Float.ceil (float_of_int t.daily_volume *. t.sc_round_duration /. 86_400.0))

let epoch_duration t = float_of_int t.sc_rounds_per_epoch *. t.sc_round_duration
let generation_duration t = float_of_int t.epochs *. epoch_duration t
