(** The ammBoost system simulator — the §3 functionality realized over
    the substrates: SystemSetup/PartySetup in [run]'s setup phase,
    CreateTx/VerifyTx in the traffic generator and processor, UpdateState
    as meta/summary block production, Elect as per-epoch VRF sortition,
    and Prune on Sync confirmation.

    One call to {!run} simulates the configured epochs (plus queue-drain
    epochs, as the paper empties queues before measuring latency), the
    mainchain running in parallel, epoch deposits, Sync submission with
    mass-sync recovery from interruptions, pruning, and metric
    collection. Runs are deterministic in the configuration seed. *)

type committee_record = {
  epoch : int;
  committee : int list;  (** elected miner ids, best priority first *)
  leader : int;
}

(** The liveness watchdog's operating modes. [Normal → Degraded] on
    sustained sync lag, retry pressure or degraded-quorum signing;
    [→ Halted] when the watchdog gives up on the committee — the
    TokenBank freezes and parties withdraw on chain via the emergency
    exit; [Halted → Recovering] when a reconciliation of the pending
    certified summaries lands; [Recovering → Normal] after a clean
    invariant audit. *)
type mode = Normal | Degraded | Halted | Recovering

val mode_name : mode -> string
(** ["normal"], ["degraded"], ["halted"], ["recovering"] — the strings
    used in {!result.final_mode} and the structured logs. *)

type result = {
  cfg : Config.t;
  generated : int;
  processed : int;
  rejected : int;
  throughput : float;
      (** transactions processed within the generation window / its duration *)
  mean_tx_latency : float;
      (** submission → meta-block inclusion (the paper's sidechain latency) *)
  mean_payout_latency : float;
      (** submission → Sync inclusion on the mainchain *)
  payouts_settled : int;
  sc_cumulative_bytes : int;   (** all sidechain blocks ever produced *)
  sc_stored_bytes : int;       (** after pruning *)
  sc_max_stored_bytes : int;
  max_summary_block_bytes : int;
  summary_user_entries : int;
      (** user entries across every summary built this run — O(active)
          under delta summaries, epochs × population before them *)
  summary_user_entries_max : int;
  mc_tx_bytes : int;           (** mainchain growth: deposits + syncs *)
  mc_gas_total : int;
  mc_gas_by_label : (string * int) list;
  mc_bytes_by_label : (string * int) list;
  deposit_gas_mean : float;
  deposit_latency_mean : float;
  sync_latency_mean : float;
  last_sync_receipt : Tokenbank.Token_bank.sync_receipt option;
  sync_count : int;
  epochs_run : int;
  epochs_applied : int;        (** epochs whose Sync landed on TokenBank *)
  mass_syncs : int;            (** recovery syncs covering multiple epochs *)
  sync_retries : int;          (** backoff re-submissions after observed
                                   sync failures (drop/reject/reorg) *)
  degraded_signings : int;     (** summaries signed with withheld or
                                   corrupted shares *)
  corrupted_partials : int;    (** tampered partial signatures caught by
                                   [Bls.verify_partial] and discarded *)
  rollbacks : int;             (** mainchain forks rolled back (scripted
                                   interruptions + injected reorgs) *)
  faults_injected : (string * int) list;
      (** per-label injection counts from the fault plan, sorted *)
  replay_consistent : bool;
      (** differential replay oracle: final TokenBank state equals a fresh
          replica's after replaying the surviving deposit/sync history *)
  rejection_reasons : (string * int) list;
  custody_consistent : bool;
      (** TokenBank ERC20 custody = pool balances + outstanding deposits *)
  audit_passed : bool option;
      (** with [Config.self_audit]: every epoch's summary re-derived from
          its meta-blocks by {!Sidechain.Auditor} and matched *)
  final_mode : string;          (** {!mode_name} of the final operating mode *)
  mode_transitions : (float * string) list;
      (** (time, mode entered), oldest first; empty if never left Normal *)
  monitor_audits : int;         (** cross-layer invariant audits run *)
  monitor_violations : (string * int) list;
      (** cumulative violations per severity, zero entries omitted *)
  durability : (string * int) list;
      (** [durability.*] counters from the durable session — records
          appended / replayed / skipped, snapshots written / verified /
          healed / rejected, WAL segments repaired / dropped; empty for
          non-durable runs *)
  exits_served : int;           (** emergency exits applied while Halted *)
  exit_claims0 : Amm_math.U256.t;  (** total value withdrawn via exits *)
  exit_claims1 : Amm_math.U256.t;
  exit_gas_mean : float;        (** mean metered gas per exit *)
  exit_conservation : bool;
      (** custody at halt = custody now + everything paid out since *)
  halted_at : float option;
  recovery_latency : float option;
      (** halt → reconciliation applied, when both happened *)
  reconciliation : Tokenbank.Token_bank.reconciliation option;
  committees : committee_record list;
  swaps : int;
  mints : int;
  burns : int;
  collects : int;
  growth : Observe.Growth_ledger.t;
      (** per-epoch state-growth ledger: one row sampled at each epoch
          boundary (plus a closing row after the drain) with
          bytes/gas/storage-word fields per layer; mirrored into the
          metrics sink as ["growth.*"] time series *)
  lifecycle_sampled : int;
      (** ops the deterministic 1-in-8 lifecycle sampler kept *)
  lifecycle_seen : int;  (** all included ops the tracer counted *)
  twin_audits : int;
      (** epoch-boundary differential audits run by the state twin *)
  twin_divergences : int;
      (** divergent keys reported across all twin audits; nonzero means
          live state and the twin's shadow disagreed byte-for-byte *)
  twin_consistent : bool;  (** [twin_divergences = 0] *)
  twin_reports : Twin.report list;
      (** every forensic divergence report, oldest first *)
  twin_injections : (int * string) list;
      (** (epoch, key) of every state corruption that actually landed,
          oldest first — key strings match {!Twin.key_to_string}, so the
          twin-audit gate can diff this against [twin_reports] *)
  twin_view : Twin.view option;
      (** the twin's sealed-epoch time-travel view ([None] when
          [Config.twin_audit] is off) *)
}

val run :
  ?sink:Telemetry.Report.sink -> ?durable:Durable.Session.t -> Config.t -> result
(** [run ?sink cfg] simulates the system. When [sink] is given, the run
    fills its metrics registry (counters, gauges, latency/size
    histograms) and — if the sink's tracer is enabled — records
    simulated-clock phase spans (traffic, meta-block, summary, sign,
    sync, confirm, prune) exportable as Chrome trace JSON. Metrics
    snapshots are deterministic in the configuration seed.

    When [durable] is given, the run is crash-consistent: every
    oracle-visible state delta goes through the session's write-ahead
    log (verify-or-append against what a previous incarnation left on
    disk), epoch boundaries take checksummed snapshots on the session's
    cadence, and the fault plan's durability class may kill the run at a
    round boundary — {!Durable.Session.Crashed} escapes [run], and a
    fresh session over the same directory resumes by integrity-checked
    re-execution. *)
