(** Synthetic Uniswap-like traffic following the paper's measured 2023
    distribution (Table 8; App. C) at the constant arrival rate
    ρ = ⌈V_D·b_t/86400⌉ per sidechain round.

    LPs mostly supplement their existing positions, occasionally open new
    ones, and sometimes withdraw fully — keeping the live position count
    bounded by the LP population, which is what bounds the paper's Sync
    cost and sidechain growth (Table 5). Burns/collects issued before an
    LP owns any position fall back to mints, so the realized mint share
    runs slightly above nominal. *)

type t

val create : rng:Amm_crypto.Rng.t -> cfg:Config.t -> users:Party.user array -> t

val iter_round : t -> round:int -> time:float -> (Chain.Tx.t -> unit) -> int
(** Streams the round's arrivals (ρ transactions) to the callback in
    generation order without materializing the round; returns the count.
    At million-user arrival rates this keeps traffic generation O(1) in
    live memory where {!generate_round} allocates the whole round. *)

val generate_round : t -> round:int -> time:float -> Chain.Tx.t list
(** The round's arrivals (ρ transactions) as a list (thin wrapper over
    {!iter_round}; same RNG draw order). *)

val generated : t -> int

(** {1 Table 8 statistics} *)

type type_stats = {
  ts_name : string;
  ts_share_pct : float;
  ts_daily_volume : float;
  ts_avg_size : float;
}

val table8_stats : t -> type_stats list
