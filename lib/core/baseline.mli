(** The baseline: Uniswap V3 deployed directly on the mainchain (the
    paper's Sepolia deployment). The same generated traffic executes
    through the same pool/router logic, but every operation is an
    on-chain transaction paying the measured per-operation gas
    ({!Gas_model}) and adding its encoded bytes to the chain. *)

type result = {
  cfg : Config.t;
  generated : int;
  executed : int;
  rejected : int;
  gas_total : int;
  gas_by_op : (string * int) list;
  mc_tx_bytes : int;           (** Sepolia encoding — what lands on chain *)
  mc_tx_bytes_ethereum : int;  (** the same ops under production-Ethereum encoding *)
  latency_by_op : (string * float) list;
  throughput : float;
  swaps : int;
  mints : int;
  burns : int;
  collects : int;
  growth_epochs : (int * float) list;
      (** (epoch, cumulative mainchain tx bytes) at each epoch start plus
          a closing entry after the drain — the measured counterfactual
          series the run-report plots against the growth ledger *)
}

val run : Config.t -> result
