(** Streaming metric aggregation. Experiments process millions of
    transactions, so only running sums are kept — never per-transaction
    lists. *)

(** {1 Scalar aggregates} *)

type agg

val agg : unit -> agg
val observe : agg -> float -> unit
val mean : agg -> float
val count : agg -> int
val max_value : agg -> float

(** {1 Payout latency tracking}

    When epoch [e]'s Sync lands at time [T], every transaction processed
    in [e] has payout latency [T - issued_at]; per epoch only
    [Σ issued_at] and the count are needed. *)

type payout_tracker

val payout_tracker : unit -> payout_tracker
val note_processed : payout_tracker -> epoch:int -> issued_at:float -> unit
val settle_epoch : payout_tracker -> epoch:int -> sync_time:float -> unit
val pending_mean_issued : payout_tracker -> epoch:int -> (float * int) option
(** Mean issue time and count of an epoch's still-pending payouts, or
    [None] if nothing is pending; lets callers derive the epoch's payout
    latency at settle time. *)

val payout_mean : payout_tracker -> float
val payout_count : payout_tracker -> int
val unsettled_epochs : payout_tracker -> int list
