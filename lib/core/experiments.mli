(** One harness per table and figure of the paper's evaluation (§6), plus
    the ablations from DESIGN.md. Absolute numbers are compared against
    the paper in EXPERIMENTS.md; `bench/main.exe` prints everything. *)

val scale : float
(** The AMMBOOST_BENCH_SCALE divisor applied to daily volumes (1 = the
    paper's full parameters). *)

(** {1 Performance tables (1–5)} *)

type perf_row = {
  row_label : string;
  throughput : float;
  sc_latency : float;
  payout_latency : float;
  extra : (string * string) list;
}

(** {2 Parallel cell runner}

    A table is a list of independent simulator runs ("cells"); [run_cells]
    fans them out across OCaml 5 domains. Every cell runs against a private
    telemetry sink; after the parallel phase the private sinks are merged
    into [?sink] sequentially in submission order, so both the row list and
    the aggregated metrics snapshot are identical at any [?domains] value
    (including the sequential [~domains:1]). *)

type cell = {
  cell_label : string;  (** the row/column header for this run *)
  cell_cfg : Config.t;
  cell_extra : System.result -> (string * string) list;
      (** extra report lines derived from the finished run *)
}

val cell :
  ?extra:(System.result -> (string * string) list) ->
  label:string -> Config.t -> cell

val run_cells :
  ?sink:Telemetry.Report.sink -> ?domains:int -> cell list -> perf_row list

val table1_scalability :
  ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> perf_row list
(** V_D ∈ {50K, 500K, 5M, 25M} at the default configuration. *)

val table2_block_size :
  ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> perf_row list
(** Meta-block size ∈ {0.5, 1, 1.5, 2} MB at V_D = 50M. *)

val table3_round_duration :
  ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> perf_row list
(** Sidechain round ∈ {4, 6, 9, 12} s at V_D = 25M. *)

val table4_epoch_length :
  ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> perf_row list
(** Epoch ∈ {5, 10, 20, 30, 60, 96} sidechain rounds at V_D = 25M (total
    experiment length held constant). *)

val table5_distribution :
  ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> perf_row list
(** Six (swap, mint, burn, collect) mixes at V_D = 25M; the extra column
    reports the maximum summary-block size. *)

val print_perf_table : title:string -> col_header:string -> perf_row list -> unit

(** {1 Gas, storage, and the overall comparison} *)

type table6 = {
  deposit_gas : float;
  deposit_latency : float;
  sync_payout_each : int;
  sync_storage_per_word : int;
  sync_keccak_base : int;
  sync_keccak_per_word : int;
  sync_ec_mul : int;
  sync_pairing : int;
  sync_latency : float;
  sync_gas_breakdown : (string * int) list;
  uniswap_gas : (string * int) list;
  uniswap_latency : (string * float) list;
}

val table6_gas_itemized :
  ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> table6
(** The ammBoost run and the Uniswap baseline run execute concurrently
    (they are independent simulations over the same config). *)

val print_table6 : table6 -> unit

type table7 = {
  sync_swap_entry_mainchain : int;
  sync_position_entry_mainchain : int;
  vk_size : int;
  signature_size : int;
  swap_entry_sidechain : int;
  position_entry_sidechain : int;
  uniswap_sepolia : (string * int) list;
  uniswap_ethereum : (string * int) list;
}

val table7_storage : unit -> table7
val print_table7 : table7 -> unit

type fig6 = {
  ammboost_gas : int;
  baseline_gas : int;
  gas_reduction_pct : float;
  ammboost_growth : int;
  baseline_growth_sepolia : int;
  baseline_growth_ethereum : int;
  growth_reduction_vs_sepolia_pct : float;
  growth_reduction_vs_ethereum_pct : float;
  ammboost_result : System.result;
  baseline_result : Baseline.result;
}

val fig6_overall : ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> fig6
val print_fig6 : fig6 -> unit

val table8_stats : unit -> Traffic.type_stats list
val print_table8 : Traffic.type_stats list -> unit

(** {1 Ablations} *)

type ablation_row = { ab_label : string; ab_value : float; ab_unit : string }

val ablation_authentication : ?sink:Telemetry.Report.sink -> unit -> ablation_row list
(** Sync gas with vs without the threshold-signature quorum certificate. *)

val ablation_aggregation : ?sink:Telemetry.Report.sink -> unit -> ablation_row list
(** Sync bytes vs posting every processed transaction individually. *)

val ablation_pruning : ?sink:Telemetry.Report.sink -> unit -> ablation_row list
(** Sidechain storage with vs without meta-block pruning. *)

val print_ablation : title:string -> ablation_row list -> unit

val chaos_intensities : float list

val chaos_soak :
  ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> perf_row list
(** Chaos soak: a small threshold-signing, message-level-consensus system
    swept across fault-plan intensities ({!chaos_intensities}, scaled by
    {!Faults.Fault_plan.chaos}). Extra rows report epochs applied, faults
    injected, recovery actions (mass-syncs, retries, degraded signings,
    rollbacks) and the replay-oracle verdict — rows are deterministic in
    the seed at any [?domains] value. *)

val exit_drill :
  ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> perf_row list
(** Liveness/exit drill: scripted quorum-starvation windows and a
    permanent committee loss against a tightened watchdog (Degraded at 2
    stalled epochs, Halted at 4). Sweeps stall duration against exit gas
    cost and recovery latency; extra rows report the operating-mode
    trajectory, exits served with their claimed value, the exit
    conservation and replay-oracle verdicts, and the reconciliation
    summary. Deterministic at any [?domains] value. *)

(** {1 Crash drill} *)

type drill_row = {
  drill_label : string;
  drill_crashes : int;   (** injected process deaths survived *)
  drill_detected : int;  (** corruptions caught: snapshots rejected +
                             WAL segments repaired or dropped *)
  drill_healed : int;    (** corrupt/missing snapshots rewritten *)
  drill_replayed : int;  (** records byte-verified against the WAL *)
  drill_appended : int;  (** records newly logged *)
  drill_ok : bool;       (** scene expectation met AND end state
                             byte-identical to the reference run *)
}

exception Drill_failure of string
(** A scene could not even be staged (crash/resume loop diverged, or a
    corruption scene found no file to corrupt) — distinct from a clean
    [drill_ok = false] verdict. *)

val crash_drill :
  ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> drill_row list
(** Durability drill: one uninterrupted durable reference run, then —
    in parallel — a scripted kill/restart run (hard process death at
    every {i (epoch, round)} in the crash script, each tearing the WAL
    tail) and corruption scenes that damage the newest snapshot (all
    three torn-write modes) or WAL segment before resuming. Every
    recovered run must detect the damage via checksums, fall back to
    the previous valid snapshot where needed, and end with a result
    fingerprint {e and} durable-directory byte digest identical to the
    reference. Directories live under [AMMBOOST_DRILL_DIR] (or a fresh
    temp dir); paths never reach stdout, so output is byte-identical at
    any [?domains] value. *)

val print_crash_drill : drill_row list -> unit
(** Render drill rows, ending with the [byte-identity: PASS/FAIL] line
    CI asserts on. *)

(** {1 State-growth observatory} *)

val observe_cfg : Config.t
(** The fixed configuration behind the CI growth guard — deliberately
    not scaled by [AMMBOOST_BENCH_SCALE], so the checked-in baseline
    series ([OBSERVE_baseline.json]) stays valid at any bench scale. *)

type observe_run = {
  obs_ledger : Observe.Growth_ledger.t;
  obs_series_json : string;  (** the ledger in guard-baseline JSON form *)
  obs_report : string;       (** the markdown run-report *)
  obs_sampled : int;         (** lifecycle ops kept by the 1-in-8 sampler *)
  obs_seen : int;            (** all included ops the tracer counted *)
  obs_result : System.result;
}

val observe_report :
  ?metrics:Telemetry.Metrics.t ->
  ?counterfactual:string * (int * float) list ->
  System.result ->
  string
(** Render the markdown run-report for any completed run: parameter and
    summary tables, growth sparklines and per-epoch table, lifecycle
    latency and amplification tables when [metrics] is given, and the
    mode/fault event timeline. The growth comparison uses
    [counterfactual] (a labelled per-epoch byte series, e.g. a measured
    {!Baseline.result.growth_epochs}) when given, else the ledger's own
    recorded analytic Sepolia counterfactual. *)

val observe : ?sink:Telemetry.Report.sink -> unit -> observe_run
(** Run {!observe_cfg} with the usual private-sink discipline and return
    the growth ledger, its guard JSON, and the rendered report.
    Deterministic in the seed: the JSON is byte-identical across runs
    and domain counts. *)

val print_observe : observe_run -> unit
(** Deterministic stdout table of the headline ledger series. *)

(** {1 Scale sweep} *)

val sweep_users : unit -> int list
(** User populations to sweep, ascending: [AMMBOOST_SWEEP_USERS] (a
    comma-separated list) when set and parseable, else
    [100, 1000, 10000]. *)

val sweep_epochs : unit -> int
(** Generation epochs per sweep cell: [AMMBOOST_SWEEP_EPOCHS] when set,
    else 3. *)

val sweep_cfg : users:int -> Config.t
(** The cell configuration for one population: traffic volume, mainchain
    gas limit and meta-block capacity all scale with [users] (a sync
    carrying every user's entry must fit one block), and the seed
    embeds [users] so each cell is independent of which others run. *)

type sweep_cell = {
  sw_users : int;
  sw_generated : int;
  sw_processed : int;
  sw_throughput : float;
  sw_epochs_applied : int;
  sw_epochs_run : int;
  sw_storage_words : float;  (** final bank footprint (growth ledger) *)
  sw_wall_s : float;         (** wall seconds for the cell's [System.run] *)
  sw_rss_kb : int;           (** process peak RSS after the cell (VmHWM) *)
  sw_major_words : float;    (** GC major words allocated by the cell *)
  sw_promoted_words : float;
  sw_minor_words : float;
  sw_alloc_rate_mw_s : float;
      (** allocation pressure: (minor + major − promoted) words per wall
          second, in millions *)
  sw_summary_users : int;
      (** user entries summed over the cell's epoch summaries —
          O(active) under delta summaries (deterministic, printed) *)
  sw_summary_users_max : int;  (** largest single summary's user list *)
  sw_gc_pauses : int;
      (** minor collections + major slices (runtime-events spans) *)
  sw_gc_pause_total_ms : float;
  sw_gc_pause_max_ms : float;  (** longest single stop-the-world span *)
}

val peak_rss_kb : unit -> int
(** The process high-water RSS in KiB (Linux [/proc/self/status] VmHWM;
    0 where unavailable). Monotone over the process lifetime. *)

val scale_sweep :
  ?sink:Telemetry.Report.sink -> unit -> sweep_cell list
(** Run the sweep cells sequentially in ascending user order (never
    across domains: peak RSS is process-wide, so parallel cells would
    pollute each other's measurement). Simulation outputs are
    deterministic; wall/RSS/GC fields are measurements and go to stderr
    and the results JSON only. *)

val print_scale_sweep : sweep_cell list -> unit
(** Deterministic stdout table (measurement fields omitted). *)

val sweep_json : sweep_cell list -> string
(** The sweep in [ammboost-sweep/1] JSON form (measurements included) —
    what the CI perf gate compares against the checked-in
    [SWEEP_baseline.json]. *)

(** {1 Twin-audit drill} *)

val twin_audit :
  ?sink:Telemetry.Report.sink -> ?domains:int -> unit -> perf_row list
(** Scripted silent-corruption cells (deposit row, position slab, pool
    tick — each flipped at the summary round so no later write can mask
    it) against the continuous differential audit, plus a clean cell
    (zero false positives expected) and a consecutive-corruption cell
    under background chaos (must halt). Extra rows report audits run,
    divergent keys, injections caught in their own epoch, bisection
    counts, and a read-only time-travel probe executed concurrently on
    two domains against the immutable {!System.result.twin_view}.
    Deterministic at any [?domains] value. *)

type twin_overhead = {
  tov_users : int;
  tov_epochs : int;
  tov_wall_off : float;     (** wall seconds, [twin_audit = false] *)
  tov_wall_on : float;      (** wall seconds, [twin_audit = true] *)
  tov_overhead_pct : float; (** 100·(on/off − 1) *)
  tov_audits : int;
  tov_divergences : int;
  tov_consistent : bool;
}

val twin_overhead_users : unit -> int
(** [AMMBOOST_TWIN_USERS] when set and positive, else 1000. *)

val twin_overhead : ?sink:Telemetry.Report.sink -> unit -> twin_overhead
(** One {!sweep_cfg} cell run twice in this process — twin off, then
    twin on — under identical machine conditions; the CI gate asserts
    the wall ratio stays within budget. Wall times go to stderr and
    {!twin_overhead_json} only, so stdout stays byte-identical across
    runs and job counts. *)

val print_twin_overhead : twin_overhead -> unit
(** Deterministic fields only (audit counts and the fault-free
    verdict). *)

val twin_overhead_json : twin_overhead -> string
(** The measurement in [ammboost-twin/1] JSON form — what the CI
    twin-audit overhead gate reads. *)
