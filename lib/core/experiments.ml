(* One harness per table and figure of the paper's evaluation (§6), plus
   the ablations called out in DESIGN.md. Each experiment returns
   structured rows and can print itself in the paper's shape; absolute
   numbers are compared against the paper in EXPERIMENTS.md. *)

module U256 = Amm_math.U256

(* A global scale knob (AMMBOOST_BENCH_SCALE) shrinks daily volumes for
   quick runs; 1.0 reproduces the paper's parameters. *)
let scale =
  match Sys.getenv_opt "AMMBOOST_BENCH_SCALE" with
  | Some s -> (try Stdlib.max 1.0 (float_of_string s) with _ -> 1.0)
  | None -> 1.0

let scaled volume = int_of_float (float_of_int volume /. scale)

let base = Config.default

type perf_row = {
  row_label : string;
  throughput : float;
  sc_latency : float;
  payout_latency : float;
  extra : (string * string) list;
}

let row_of_result ~label (r : System.result) ~extra =
  { row_label = label; throughput = r.System.throughput;
    sc_latency = r.System.mean_tx_latency;
    payout_latency = r.System.mean_payout_latency; extra }

(* ------------------------------------------------------------------ *)
(* Parallel cell runner                                                 *)
(* ------------------------------------------------------------------ *)

(* One table cell: an independent simulator run. Cells share nothing (each
   [System.run] builds its own world from its config seed), so a table's
   cells fan out across domains. Every cell gets a private telemetry sink;
   the private sinks are merged into the caller's sink sequentially, in
   submission order, after the parallel phase — which makes the aggregated
   metrics snapshot (and the row list) identical at any domain count. *)
type cell = {
  cell_label : string;
  cell_cfg : Config.t;
  cell_extra : System.result -> (string * string) list;
}

let cell ?(extra = fun _ -> []) ~label cfg =
  { cell_label = label; cell_cfg = cfg; cell_extra = extra }

let run_cells ?sink ?domains cells =
  let trace_wanted =
    match sink with
    | Some s -> Telemetry.Trace.enabled s.Telemetry.Report.trace
    | None -> false
  in
  let ran =
    Parallel.map_list ?domains
      (fun c ->
        let private_sink = Telemetry.Report.sink ~trace:trace_wanted () in
        let r = System.run ~sink:private_sink c.cell_cfg in
        (private_sink, r))
      cells
  in
  List.map2
    (fun c (private_sink, r) ->
      (match sink with
      | Some s -> Telemetry.Report.merge_into ~into:s private_sink
      | None -> ());
      row_of_result ~label:c.cell_label r ~extra:(c.cell_extra r))
    cells ran

(* A System.run/Baseline.run pair for the comparison experiments; the
   System side keeps the same private-sink discipline as [run_cells]. *)
let run_vs_baseline ?sink ?domains cfg =
  let trace_wanted =
    match sink with
    | Some s -> Telemetry.Trace.enabled s.Telemetry.Report.trace
    | None -> false
  in
  let private_sink = Telemetry.Report.sink ~trace:trace_wanted () in
  let r, b =
    Parallel.run_pair ?domains
      (fun () -> System.run ~sink:private_sink cfg)
      (fun () -> Baseline.run cfg)
  in
  (match sink with
  | Some s -> Telemetry.Report.merge_into ~into:s private_sink
  | None -> ());
  (r, b)

let print_perf_table ~title ~col_header rows =
  Printf.printf "\n=== %s ===\n" title;
  Printf.printf "%-28s" col_header;
  List.iter (fun r -> Printf.printf "%14s" r.row_label) rows;
  print_newline ();
  let line name f =
    Printf.printf "%-28s" name;
    List.iter (fun r -> Printf.printf "%14.2f" (f r)) rows;
    print_newline ()
  in
  line "Throughput (tx/s)" (fun r -> r.throughput);
  line "Avg sidechain latency (s)" (fun r -> r.sc_latency);
  line "Avg payout latency (s)" (fun r -> r.payout_latency);
  (match rows with
  | { extra = []; _ } :: _ | [] -> ()
  | first :: _ ->
    List.iter
      (fun (key, _) ->
        Printf.printf "%-28s" key;
        List.iter
          (fun r -> Printf.printf "%14s" (List.assoc key r.extra))
          rows;
        print_newline ())
      first.extra)

(* ------------------------------------------------------------------ *)
(* Table 1: scalability across daily volumes                           *)
(* ------------------------------------------------------------------ *)

let table1_volumes = [ 50_000; 500_000; 5_000_000; 25_000_000 ]

let table1_scalability ?sink ?domains () =
  run_cells ?sink ?domains
    (List.map
       (fun volume ->
         cell
           ~label:(Printf.sprintf "%dK" (volume / 1000))
           { base with daily_volume = scaled volume; seed = base.seed ^ "-t1" })
       table1_volumes)

(* ------------------------------------------------------------------ *)
(* Table 2: impact of meta-block size (V_D = 50M)                      *)
(* ------------------------------------------------------------------ *)

let table2_sizes_mb = [ 0.5; 1.0; 1.5; 2.0 ]

let table2_block_size ?sink ?domains () =
  run_cells ?sink ?domains
    (List.map
       (fun mb ->
         cell
           ~label:(Printf.sprintf "%.1fMB" mb)
           { base with
             daily_volume = scaled 50_000_000;
             meta_block_bytes = int_of_float (mb *. 1_000_000.0);
             seed = base.seed ^ "-t2" })
       table2_sizes_mb)

(* ------------------------------------------------------------------ *)
(* Table 3: impact of sidechain round duration (V_D = 25M)             *)
(* ------------------------------------------------------------------ *)

let table3_durations = [ 4.0; 6.0; 9.0; 12.0 ]

let table3_round_duration ?sink ?domains () =
  run_cells ?sink ?domains
    (List.map
       (fun b_t ->
         (* The epoch stays 10 mainchain rounds (120 s) as in §6, so longer
            sidechain rounds mean fewer of them per epoch. *)
         cell
           ~label:(Printf.sprintf "%.0fs" b_t)
           { base with
             daily_volume = scaled 25_000_000;
             sc_round_duration = b_t;
             sc_rounds_per_epoch =
               Stdlib.max 2 (int_of_float (Float.round (120.0 /. b_t)));
             seed = base.seed ^ "-t3" })
       table3_durations)

(* ------------------------------------------------------------------ *)
(* Table 4: impact of epoch length in sidechain rounds (V_D = 25M)     *)
(* ------------------------------------------------------------------ *)

let table4_epoch_lengths = [ 5; 10; 20; 30; 60; 96 ]

let table4_epoch_length ?sink ?domains () =
  run_cells ?sink ?domains
    (List.map
       (fun rounds ->
         (* Keep total experiment time constant (11 default epochs' worth). *)
         let total_rounds = base.epochs * base.sc_rounds_per_epoch in
         let epochs = Stdlib.max 1 (total_rounds / rounds) in
         cell
           ~label:(string_of_int rounds)
           { base with
             daily_volume = scaled 25_000_000;
             sc_rounds_per_epoch = rounds;
             epochs;
             seed = base.seed ^ "-t4" })
       table4_epoch_lengths)

(* ------------------------------------------------------------------ *)
(* Table 5: impact of traffic distribution (V_D = 25M)                 *)
(* ------------------------------------------------------------------ *)

let table5_mixes =
  [ (60., 20., 10., 10.); (60., 10., 20., 10.); (60., 10., 10., 20.);
    (80., 10., 5., 5.); (80., 5., 10., 5.); (80., 5., 5., 10.) ]

let table5_distribution ?sink ?domains () =
  run_cells ?sink ?domains
    (List.map
       (fun (s, m, b, c) ->
         cell
           ~label:(Printf.sprintf "(%.0f,%.0f,%.0f,%.0f)" s m b c)
           ~extra:(fun r ->
             [ ("Max summary block (B)",
                string_of_int r.System.max_summary_block_bytes) ])
           { base with
             daily_volume = scaled 25_000_000;
             distribution =
               { Config.swap_pct = s; mint_pct = m; burn_pct = b; collect_pct = c };
             seed = base.seed ^ "-t5" })
       table5_mixes)

(* ------------------------------------------------------------------ *)
(* Table 6: itemized gas and latency                                   *)
(* ------------------------------------------------------------------ *)

type table6 = {
  deposit_gas : float;
  deposit_latency : float;
  sync_payout_each : int;
  sync_storage_per_word : int;
  sync_keccak_base : int;
  sync_keccak_per_word : int;
  sync_ec_mul : int;
  sync_pairing : int;
  sync_latency : float;
  sync_gas_breakdown : (string * int) list;
  uniswap_gas : (string * int) list;      (* per-op averages *)
  uniswap_latency : (string * float) list;
}

let table6_gas_itemized ?sink ?domains () =
  let cfg = { base with daily_volume = scaled 500_000; seed = base.seed ^ "-t6" } in
  let r, b = run_vs_baseline ?sink ?domains cfg in
  let breakdown =
    match r.System.last_sync_receipt with
    | Some receipt -> Mainchain.Gas.breakdown receipt.Tokenbank.Token_bank.gas
    | None -> []
  in
  (* Average over the transactions that actually landed on chain (the
     per-op gas model is constant, so this recovers it exactly). *)
  let per_op gas_by_op =
    List.map
      (fun (label, total) ->
        let op =
          match label with
          | "swap" -> Chain.Encoding.Op_swap
          | "mint" -> Chain.Encoding.Op_mint
          | "burn" -> Chain.Encoding.Op_burn
          | _ -> Chain.Encoding.Op_collect
        in
        let n = Stdlib.max 1 (total / Gas_model.op_gas op) in
        (label, total / n))
      gas_by_op
  in
  { deposit_gas = r.System.deposit_gas_mean;
    deposit_latency = r.System.deposit_latency_mean;
    sync_payout_each = Mainchain.Gas.payout_transfer;
    sync_storage_per_word = Mainchain.Gas.sstore_word;
    sync_keccak_base = Mainchain.Gas.keccak_base;
    sync_keccak_per_word = Mainchain.Gas.keccak_per_word;
    sync_ec_mul = Mainchain.Gas.ec_mul;
    sync_pairing = Mainchain.Gas.pairing_check;
    sync_latency = r.System.sync_latency_mean;
    sync_gas_breakdown = breakdown;
    uniswap_gas = per_op b.Baseline.gas_by_op;
    uniswap_latency = b.Baseline.latency_by_op }

let print_table6 t =
  Printf.printf "\n=== Table 6: itemized gas cost and latency ===\n";
  Printf.printf "ammBoost deposit: %.0f gas, latency %.2f s\n" t.deposit_gas
    t.deposit_latency;
  Printf.printf
    "ammBoost Sync components: payout %d gas each | storage %d/word | keccak %d+%d/word | ecMul %d | pairing %d\n"
    t.sync_payout_each t.sync_storage_per_word t.sync_keccak_base t.sync_keccak_per_word
    t.sync_ec_mul t.sync_pairing;
  Printf.printf "ammBoost Sync latency: %.2f s; last receipt breakdown:\n" t.sync_latency;
  List.iter (fun (k, v) -> Printf.printf "    %-22s %10d gas\n" k v) t.sync_gas_breakdown;
  Printf.printf "Baseline Uniswap per-operation averages:\n";
  List.iter
    (fun (op, gas) ->
      let lat = Option.value ~default:0.0 (List.assoc_opt op t.uniswap_latency) in
      Printf.printf "    %-8s %10d gas   latency %6.2f s\n" op gas lat)
    (List.sort compare t.uniswap_gas)

(* ------------------------------------------------------------------ *)
(* Table 7: per-operation storage overhead                             *)
(* ------------------------------------------------------------------ *)

type table7 = {
  sync_swap_entry_mainchain : int;
  sync_position_entry_mainchain : int;
  vk_size : int;
  signature_size : int;
  swap_entry_sidechain : int;
  position_entry_sidechain : int;
  uniswap_sepolia : (string * int) list;
  uniswap_ethereum : (string * int) list;
}

let table7_storage () =
  { sync_swap_entry_mainchain = Tokenbank.Sync_payload.abi_user_entry_size;
    sync_position_entry_mainchain = Tokenbank.Sync_payload.abi_position_entry_size;
    vk_size = Amm_crypto.Bls.public_key_size;
    signature_size = Amm_crypto.Bls.signature_size;
    swap_entry_sidechain = Sidechain.Codec.user_entry_size;
    position_entry_sidechain = Sidechain.Codec.position_entry_size;
    uniswap_sepolia =
      List.map
        (fun (name, op) -> (name, Chain.Encoding.sepolia_op_size op))
        [ ("Swap", Chain.Encoding.Op_swap); ("Mint", Chain.Encoding.Op_mint);
          ("Burn", Chain.Encoding.Op_burn); ("Collect", Chain.Encoding.Op_collect) ];
    uniswap_ethereum =
      List.map
        (fun (name, op) -> (name, Chain.Encoding.ethereum_op_size op))
        [ ("Swap", Chain.Encoding.Op_swap); ("Mint", Chain.Encoding.Op_mint);
          ("Burn", Chain.Encoding.Op_burn); ("Collect", Chain.Encoding.Op_collect) ] }

let print_table7 t =
  Printf.printf "\n=== Table 7: operation storage overhead (bytes) ===\n";
  Printf.printf "ammBoost Sync on mainchain : swap entry %d | position entry %d | vk %d | signature %d\n"
    t.sync_swap_entry_mainchain t.sync_position_entry_mainchain t.vk_size t.signature_size;
  Printf.printf "ammBoost on sidechain      : swap entry %d | position entry %d\n"
    t.swap_entry_sidechain t.position_entry_sidechain;
  Printf.printf "Uniswap on Sepolia         : %s\n"
    (String.concat " | "
       (List.map (fun (n, v) -> Printf.sprintf "%s %d" n v) t.uniswap_sepolia));
  Printf.printf "Uniswap on Ethereum        : %s\n"
    (String.concat " | "
       (List.map (fun (n, v) -> Printf.sprintf "%s %d" n v) t.uniswap_ethereum))

(* ------------------------------------------------------------------ *)
(* Figure 6: overall gas and chain-growth comparison                   *)
(* ------------------------------------------------------------------ *)

type fig6 = {
  ammboost_gas : int;
  baseline_gas : int;
  gas_reduction_pct : float;
  ammboost_growth : int;
  baseline_growth_sepolia : int;
  baseline_growth_ethereum : int;
  growth_reduction_vs_sepolia_pct : float;
  growth_reduction_vs_ethereum_pct : float;
  ammboost_result : System.result;
  baseline_result : Baseline.result;
}

let fig6_overall ?sink ?domains () =
  let cfg = { base with daily_volume = scaled 500_000; seed = base.seed ^ "-fig6" } in
  let r, b = run_vs_baseline ?sink ?domains cfg in
  let reduction ours theirs =
    100.0 *. (1.0 -. (float_of_int ours /. float_of_int (Stdlib.max 1 theirs)))
  in
  { ammboost_gas = r.System.mc_gas_total;
    baseline_gas = b.Baseline.gas_total;
    gas_reduction_pct = reduction r.System.mc_gas_total b.Baseline.gas_total;
    ammboost_growth = r.System.mc_tx_bytes;
    baseline_growth_sepolia = b.Baseline.mc_tx_bytes;
    baseline_growth_ethereum = b.Baseline.mc_tx_bytes_ethereum;
    growth_reduction_vs_sepolia_pct = reduction r.System.mc_tx_bytes b.Baseline.mc_tx_bytes;
    growth_reduction_vs_ethereum_pct =
      reduction r.System.mc_tx_bytes b.Baseline.mc_tx_bytes_ethereum;
    ammboost_result = r;
    baseline_result = b }

let print_fig6 f =
  Printf.printf "\n=== Figure 6: overall comparison (V_D = 10x Uniswap) ===\n";
  Printf.printf "Total mainchain gas  : ammBoost %12d | Uniswap %12d  -> %.2f%% reduction (paper: 94.53%%)\n"
    f.ammboost_gas f.baseline_gas f.gas_reduction_pct;
  Printf.printf "Mainchain growth (B) : ammBoost %12d | Uniswap %12d  -> %.2f%% reduction vs Sepolia (paper: 80.25%%)\n"
    f.ammboost_growth f.baseline_growth_sepolia f.growth_reduction_vs_sepolia_pct;
  Printf.printf "                      vs production Ethereum %12d -> %.2f%% reduction (paper: 92.80%%)\n"
    f.baseline_growth_ethereum f.growth_reduction_vs_ethereum_pct;
  Printf.printf "ammBoost gas by label: %s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          (List.sort compare f.ammboost_result.System.mc_gas_by_label)))

(* ------------------------------------------------------------------ *)
(* Table 8: traffic distribution statistics                            *)
(* ------------------------------------------------------------------ *)

let table8_stats () =
  let cfg = { base with daily_volume = scaled 500_000; epochs = 4; seed = base.seed ^ "-t8" } in
  let rng = Amm_crypto.Rng.create cfg.Config.seed in
  let users =
    Party.make_users (Amm_crypto.Rng.split rng "users") ~count:cfg.Config.users
      ~lp_fraction:cfg.Config.lp_fraction
  in
  let traffic = Traffic.create ~rng ~cfg ~users in
  let rounds = cfg.Config.epochs * cfg.Config.sc_rounds_per_epoch in
  for round = 0 to rounds - 1 do
    ignore
      (Traffic.generate_round traffic ~round
         ~time:(float_of_int round *. cfg.Config.sc_round_duration))
  done;
  Traffic.table8_stats traffic

let print_table8 rows =
  Printf.printf "\n=== Table 8: transaction type breakdown ===\n";
  Printf.printf "%-10s %12s %18s %14s\n" "Type" "% of traffic" "Volume per 24h" "Avg size (B)";
  List.iter
    (fun r ->
      Printf.printf "%-10s %11.2f%% %18.0f %14.2f\n" r.Traffic.ts_name r.Traffic.ts_share_pct
        r.Traffic.ts_daily_volume r.Traffic.ts_avg_size)
    rows

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §6)                                            *)
(* ------------------------------------------------------------------ *)

type ablation_row = { ab_label : string; ab_value : float; ab_unit : string }

(* Sync authentication cost: gas with vs without the threshold-signature
   quorum certificate. *)
let ablation_authentication ?sink () =
  let cfg = { base with daily_volume = scaled 500_000; epochs = 4; seed = base.seed ^ "-aba" } in
  let r = System.run ?sink cfg in
  match r.System.last_sync_receipt with
  | None -> []
  | Some receipt ->
    let items = Mainchain.Gas.breakdown receipt.Tokenbank.Token_bank.gas in
    let total = Mainchain.Gas.total receipt.Tokenbank.Token_bank.gas in
    let auth =
      List.fold_left
        (fun acc (k, v) ->
          if String.length k >= 4 && String.sub k 0 4 = "auth" then acc + v else acc)
        0 items
    in
    [ { ab_label = "sync gas with QC auth"; ab_value = float_of_int total; ab_unit = "gas" };
      { ab_label = "sync gas without QC auth"; ab_value = float_of_int (total - auth);
        ab_unit = "gas" };
      { ab_label = "QC auth overhead"; ab_value = 100.0 *. float_of_int auth /. float_of_int total;
        ab_unit = "%" } ]

(* Summary aggregation: the Sync's per-user aggregation vs naively posting
   every processed transaction on the mainchain (batched but
   unsummarized). *)
let ablation_aggregation ?sink () =
  let cfg = { base with daily_volume = scaled 500_000; epochs = 4; seed = base.seed ^ "-abg" } in
  let r = System.run ?sink cfg in
  (* Compare what syncing actually posts against posting every processed
     transaction individually (batched but unsummarized). *)
  let summarized =
    Option.value ~default:0 (List.assoc_opt "sync" r.System.mc_bytes_by_label)
  in
  let naive =
    (* every processed tx posted at its Sepolia size *)
    r.System.swaps * Chain.Encoding.sepolia_op_size Chain.Encoding.Op_swap
    + (r.System.mints * Chain.Encoding.sepolia_op_size Chain.Encoding.Op_mint)
    + (r.System.burns * Chain.Encoding.sepolia_op_size Chain.Encoding.Op_burn)
    + (r.System.collects * Chain.Encoding.sepolia_op_size Chain.Encoding.Op_collect)
  in
  [ { ab_label = "mainchain bytes, summarized sync"; ab_value = float_of_int summarized;
      ab_unit = "B" };
    { ab_label = "mainchain bytes, per-tx posting"; ab_value = float_of_int naive;
      ab_unit = "B" };
    { ab_label = "summarization saving";
      ab_value = 100.0 *. (1.0 -. (float_of_int summarized /. float_of_int (Stdlib.max 1 naive)));
      ab_unit = "%" } ]

(* Pruning: sidechain bytes stored with and without meta-block pruning. *)
let ablation_pruning ?sink () =
  let cfg = { base with daily_volume = scaled 500_000; epochs = 4; seed = base.seed ^ "-abp" } in
  let r = System.run ?sink cfg in
  [ { ab_label = "sidechain bytes without pruning";
      ab_value = float_of_int r.System.sc_cumulative_bytes; ab_unit = "B" };
    { ab_label = "sidechain bytes with pruning";
      ab_value = float_of_int r.System.sc_stored_bytes; ab_unit = "B" };
    { ab_label = "pruning saving";
      ab_value =
        100.0
        *. (1.0
           -. (float_of_int r.System.sc_stored_bytes
              /. float_of_int (Stdlib.max 1 r.System.sc_cumulative_bytes)));
      ab_unit = "%" } ]

let print_ablation ~title rows =
  Printf.printf "\n=== Ablation: %s ===\n" title;
  List.iter
    (fun r -> Printf.printf "  %-36s %14.2f %s\n" r.ab_label r.ab_value r.ab_unit)
    rows

(* ------------------------------------------------------------------ *)
(* Chaos soak: fault-rate sweep with recovery + replay-oracle report   *)
(* ------------------------------------------------------------------ *)

let chaos_intensities = [ 0.0; 0.05; 0.1; 0.2 ]

let chaos_soak ?sink ?domains () =
  run_cells ?sink ?domains
    (List.map
       (fun intensity ->
         cell
           ~label:(Printf.sprintf "%d%%" (int_of_float ((intensity *. 100.) +. 0.5)))
           ~extra:(fun r ->
             [ ("Epochs applied",
                Printf.sprintf "%d/%d" r.System.epochs_applied r.System.epochs_run);
               ("Faults injected",
                string_of_int
                  (List.fold_left (fun acc (_, n) -> acc + n) 0
                     r.System.faults_injected));
               ("Mass-syncs", string_of_int r.System.mass_syncs);
               ("Sync retries", string_of_int r.System.sync_retries);
               ("Degraded signings", string_of_int r.System.degraded_signings);
               ("Corrupted partials", string_of_int r.System.corrupted_partials);
               ("Rollbacks", string_of_int r.System.rollbacks);
               ("Replay oracle",
                if r.System.replay_consistent then "pass" else "FAIL") ])
           { base with
             epochs = 4;
             daily_volume = scaled 50_000;
             users = 12;
             miners = 40;
             committee_size = 13;
             max_faulty = 4;
             threshold_signing = true;
             message_level_consensus = true;
             mc_confirmations = 3;
             faults = Faults.Fault_plan.chaos ~intensity ();
             seed = base.seed ^ "-chaos" })
       chaos_intensities)

(* ------------------------------------------------------------------ *)
(* Exit drill: stall duration vs exit gas cost and recovery latency    *)
(* ------------------------------------------------------------------ *)

(* Three scripted liveness failures against a tightened watchdog
   (Degraded at 2 stalled epochs, Halted at 4): a short starvation the
   system rides out in Degraded, a long one that halts it and is then
   reconciled, and a permanent committee loss whose halt is terminal —
   the emergency exits are the only settlement. *)
let exit_drill_scenarios =
  [ ( "stall=2",
      { Faults.Fault_plan.quorum_starvation = Some (2, 4); committee_loss = None } );
    ( "stall=4",
      { Faults.Fault_plan.quorum_starvation = Some (2, 5); committee_loss = None } );
    ( "loss@2",
      { Faults.Fault_plan.quorum_starvation = None; committee_loss = Some 2 } ) ]

let exit_drill ?sink ?domains () =
  run_cells ?sink ?domains
    (List.map
       (fun (label, scenario) ->
         cell ~label
           ~extra:(fun r ->
             (* 14-char table cells: trajectory as mode initials, token
                amounts in 1e18 units, severities abbreviated. *)
             let initial m = String.make 1 (Char.uppercase_ascii m.[0]) in
             let tokens u =
               Printf.sprintf "%.1f" (float_of_string (U256.to_string u) /. 1e18)
             in
             [ ("Final mode", r.System.final_mode);
               ("Mode trajectory",
                String.concat "->"
                  ("N" :: List.map (fun (_, m) -> initial m) r.System.mode_transitions));
               ("Halted at (s)",
                (match r.System.halted_at with
                | Some ts -> Printf.sprintf "%.0f" ts
                | None -> "-"));
               ("Epochs applied",
                Printf.sprintf "%d/%d" r.System.epochs_applied r.System.epochs_run);
               ("Exits served", string_of_int r.System.exits_served);
               ("Exit claims (token0)", tokens r.System.exit_claims0);
               ("Exit claims (token1)", tokens r.System.exit_claims1);
               ("Exit gas (mean)", Printf.sprintf "%.0f" r.System.exit_gas_mean);
               ("Exit conservation",
                if r.System.exit_conservation then "pass" else "FAIL");
               ("Recovery latency (s)",
                (match r.System.recovery_latency with
                | Some l -> Printf.sprintf "%.0f" l
                | None -> if r.System.final_mode = "halted" then "never" else "n/a"));
               ("Reconciled (ep/ap/vd)",
                (match r.System.reconciliation with
                | Some rec_ ->
                  Printf.sprintf "%d/%d/%d"
                    (List.length rec_.Tokenbank.Token_bank.rec_epochs)
                    rec_.Tokenbank.Token_bank.rec_users_applied
                    rec_.Tokenbank.Token_bank.rec_users_voided
                | None -> "none"));
               ("Monitor violations",
                if r.System.monitor_violations = [] then "none"
                else
                  String.concat " "
                    (List.map
                       (fun (s, n) ->
                         Printf.sprintf "%s:%d" (String.sub s 0 4) n)
                       r.System.monitor_violations));
               ("Replay oracle",
                if r.System.replay_consistent then "pass" else "FAIL");
               ("Custody",
                if r.System.custody_consistent then "pass" else "FAIL") ])
           { base with
             epochs = 8;
             daily_volume = scaled 50_000;
             users = 20;
             miners = 40;
             committee_size = 13;
             max_faulty = 4;
             faults = { Faults.Fault_plan.none with Faults.Fault_plan.scenario };
             watchdog =
               { Config.default_watchdog with
                 Config.wd_stall_degraded = 2; wd_stall_halted = 4 };
             seed = base.seed ^ "-exit-drill" })
       exit_drill_scenarios)

(* ------------------------------------------------------------------ *)
(* Crash drill: kill/restart at every injected point + torn-write      *)
(* corruption; every recovered run must end byte-identical to an       *)
(* uninterrupted one                                                   *)
(* ------------------------------------------------------------------ *)

let drill_snapshot_every = 2

(* (epoch, round) process deaths: mid-epoch, an epoch's first round, the
   summary round (29 of 30), and points either side of the durable
   snapshots at epochs 2 and 4. Every crash also tears the WAL tail
   (torn_write_rate = 1.0), rotating deterministically through the three
   torn-write modes. *)
let crash_drill_points = [ (0, 15); (1, 3); (2, 9); (3, 29); (4, 21) ]

let crash_drill_cfg =
  { base with
    epochs = 6;
    daily_volume = scaled 50_000;
    users = 12;
    miners = 30;
    committee_size = 9;
    max_faulty = 2;
    threshold_signing = true;
    mc_confirmations = 2;
    (* a reorg mid-run exercises the WAL's Truncate compensation records *)
    interruptions = [ Config.Mainchain_rollback 2 ];
    seed = base.seed ^ "-crash-drill" }

type drill_row = {
  drill_label : string;
  drill_crashes : int;   (* injected process deaths survived *)
  drill_detected : int;  (* corruptions caught: snapshots rejected +
                            WAL segments repaired or dropped *)
  drill_healed : int;    (* corrupt/missing snapshots rewritten *)
  drill_replayed : int;  (* records byte-verified against the WAL *)
  drill_appended : int;  (* records newly logged *)
  drill_ok : bool;       (* scene expectation met AND end state
                            byte-identical to the reference run *)
}

exception Drill_failure of string

(* The drill needs real directories. AMMBOOST_DRILL_DIR pins the root
   (CI keeps it as an artifact); otherwise a fresh temp dir per process.
   Paths never reach stdout — the drill output is byte-identical across
   runs, hosts and domain counts. *)
let drill_root () =
  match Sys.getenv_opt "AMMBOOST_DRILL_DIR" with
  | Some d when d <> "" ->
    Durable.Fsio.mkdir_p d;
    d
  | _ ->
    let f = Filename.temp_file "ammboost-drill" "" in
    Sys.remove f;
    Durable.Fsio.mkdir_p f;
    f

(* Scene dirs are wiped before use so a re-run with a pinned
   AMMBOOST_DRILL_DIR starts from genesis, not from stale state. *)
let drill_scene_dir root name =
  let dir = Filename.concat root name in
  Durable.Fsio.mkdir_p dir;
  Array.iter
    (fun f -> Durable.Fsio.remove_if_exists (Filename.concat dir f))
    (Sys.readdir dir);
  dir

(* Run [cfg] durably in [dir] to completion, resuming across injected
   crashes (each resume re-opens the directory and re-executes with the
   previous crash point disarmed). Returns the completed run, the number
   of crashes survived, and the final run's private sink. *)
let drill_complete ~dir cfg =
  let limit = List.length crash_drill_points + 2 in
  let rec go ~armed_after ~crashes =
    if crashes > limit then
      raise (Drill_failure "crash/resume loop did not converge");
    let s =
      Durable.Session.open_ ?armed_after ~dir
        ~snapshot_every:drill_snapshot_every ()
    in
    let private_sink = Telemetry.Report.sink () in
    match System.run ~sink:private_sink ~durable:s cfg with
    | r -> (r, crashes, private_sink)
    | exception Durable.Session.Crashed { epoch; round } ->
      go ~armed_after:(Some (epoch, round)) ~crashes:(crashes + 1)
  in
  go ~armed_after:None ~crashes:0

(* Everything observable about a finished run except the durability and
   monitor counters (a recovered run legitimately reports extra
   durability work and corruption warnings). *)
let drill_fingerprint (r : System.result) =
  String.concat "|"
    [ string_of_int r.System.generated; string_of_int r.System.processed;
      string_of_int r.System.rejected;
      Printf.sprintf "%.9f" r.System.throughput;
      Printf.sprintf "%.9f" r.System.mean_tx_latency;
      Printf.sprintf "%.9f" r.System.mean_payout_latency;
      string_of_int r.System.payouts_settled;
      string_of_int r.System.sc_cumulative_bytes;
      string_of_int r.System.sc_stored_bytes;
      string_of_int r.System.max_summary_block_bytes;
      string_of_int r.System.mc_tx_bytes; string_of_int r.System.mc_gas_total;
      String.concat ","
        (List.map
           (fun (l, n) -> l ^ ":" ^ string_of_int n)
           r.System.mc_gas_by_label);
      string_of_int r.System.epochs_run; string_of_int r.System.epochs_applied;
      string_of_int r.System.sync_count; string_of_int r.System.rollbacks;
      string_of_int r.System.exits_served;
      U256.to_string r.System.exit_claims0;
      U256.to_string r.System.exit_claims1;
      r.System.final_mode;
      string_of_bool r.System.replay_consistent;
      string_of_bool r.System.custody_consistent;
      string_of_int r.System.swaps; string_of_int r.System.mints;
      string_of_int r.System.burns; string_of_int r.System.collects ]

(* The durable directory reduced to bytes: file names, sizes, CRCs. Two
   runs ended up in the same state iff their digests match. *)
let drill_dir_digest dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun f ->
         let b = Durable.Fsio.read_file (Filename.concat dir f) in
         Printf.sprintf "%s:%d:%08x" f (Bytes.length b)
           (Durable.Crc32.digest b))
  |> String.concat ";"

type drill_scene =
  | Scene_crashes
  | Scene_corrupt_snapshot of Faults.Fault_plan.torn
  | Scene_torn_wal

let drill_scenes =
  [ ("crash-script", Scene_crashes);
    ( "snapshot-truncated-tail",
      Scene_corrupt_snapshot Faults.Fault_plan.Truncated_tail );
    ("snapshot-bit-flip", Scene_corrupt_snapshot Faults.Fault_plan.Bit_flip);
    ( "snapshot-stale-marker",
      Scene_corrupt_snapshot Faults.Fault_plan.Stale_marker );
    ("wal-torn-tail", Scene_torn_wal) ]

let crash_drill ?sink ?domains () =
  let root = drill_root () in
  let stat (r : System.result) name =
    Option.value ~default:0 (List.assoc_opt name r.System.durability)
  in
  let detected r =
    stat r "durability.snapshots_rejected"
    + stat r "durability.wal_repaired"
    + stat r "durability.wal_dropped"
  in
  let row ~label ~crashes ~ok (r : System.result) =
    { drill_label = label; drill_crashes = crashes;
      drill_detected = detected r;
      drill_healed = stat r "durability.snapshots_healed";
      drill_replayed = stat r "durability.records_replayed";
      drill_appended = stat r "durability.records_appended";
      drill_ok = ok }
  in
  (* Scene A: the uninterrupted durable reference run every other scene
     must reproduce byte-for-byte. *)
  let ref_dir = drill_scene_dir root "reference" in
  let r_ref, _, ref_sink = drill_complete ~dir:ref_dir crash_drill_cfg in
  let ref_fp = drill_fingerprint r_ref in
  let ref_digest = drill_dir_digest ref_dir in
  let ref_row =
    (* Fresh ground truth: everything appended, nothing replayed or
       found wrong. *)
    row ~label:"reference" ~crashes:0
      ~ok:
        (stat r_ref "durability.records_appended" > 0
        && stat r_ref "durability.records_replayed" = 0
        && detected r_ref = 0)
      r_ref
  in
  let identical dir r = drill_fingerprint r = ref_fp && drill_dir_digest dir = ref_digest in
  let run_scene (label, scene) =
    let dir = drill_scene_dir root label in
    match scene with
    | Scene_crashes ->
      (* Seeded hard process death at every scripted point, each with a
         torn WAL tail; the crash→recover→resume loop must converge and
         end identical to the reference. *)
      let cfg =
        { crash_drill_cfg with
          faults =
            { Faults.Fault_plan.none with
              Faults.Fault_plan.durability =
                { Faults.Fault_plan.crash_rate = 0.0;
                  torn_write_rate = 1.0;
                  crash_script = crash_drill_points } } }
      in
      let r, crashes, scene_sink = drill_complete ~dir cfg in
      let ok =
        crashes = List.length crash_drill_points && identical dir r
      in
      (row ~label ~crashes ~ok r, scene_sink)
    | Scene_corrupt_snapshot mode ->
      (* Complete a run, corrupt the newest snapshot, resume: recovery
         must detect it, fall back to the previous snapshot, and heal
         the corrupt file during re-execution. *)
      let _, _, _ = drill_complete ~dir crash_drill_cfg in
      (match List.rev (Durable.Snapshot.list ~dir) with
      | (_, p) :: _ -> Durable.Torn.apply p mode
      | [] -> raise (Drill_failure (label ^ ": no snapshot on disk")));
      let r, crashes, scene_sink = drill_complete ~dir crash_drill_cfg in
      let ok =
        stat r "durability.snapshots_rejected" >= 1
        && stat r "durability.snapshots_healed" >= 1
        && identical dir r
      in
      (row ~label ~crashes ~ok r, scene_sink)
    | Scene_torn_wal ->
      (* Complete a run, tear the newest WAL segment's tail, resume:
         recovery must repair the segment and re-execution must re-log
         the lost records. *)
      let _, _, _ = drill_complete ~dir crash_drill_cfg in
      (match List.rev (Durable.Wal.list ~dir) with
      | (_, p) :: _ -> Durable.Torn.apply p Faults.Fault_plan.Truncated_tail
      | [] -> raise (Drill_failure (label ^ ": no WAL segment on disk")));
      let r, crashes, scene_sink = drill_complete ~dir crash_drill_cfg in
      let ok =
        stat r "durability.wal_repaired" >= 1
        && stat r "durability.records_appended" >= 1
        && identical dir r
      in
      (row ~label ~crashes ~ok r, scene_sink)
  in
  let scene_rows = Parallel.map_list ?domains run_scene drill_scenes in
  (* Private sinks merge sequentially, in scene order, after the
     parallel phase — same discipline as [run_cells]. *)
  (match sink with
  | Some out ->
    Telemetry.Report.merge_into ~into:out ref_sink;
    List.iter
      (fun (_, scene_sink) -> Telemetry.Report.merge_into ~into:out scene_sink)
      scene_rows
  | None -> ());
  ref_row :: List.map fst scene_rows

let print_crash_drill rows =
  Printf.printf "\n=== Crash drill: kill/restart + torn-write recovery ===\n";
  Printf.printf "%-26s%9s%10s%8s%10s%10s  %s\n" "Scene" "crashes" "detected"
    "healed" "replayed" "appended" "state";
  List.iter
    (fun d ->
      Printf.printf "%-26s%9d%10d%8d%10d%10d  %s\n" d.drill_label
        d.drill_crashes d.drill_detected d.drill_healed d.drill_replayed
        d.drill_appended
        (if d.drill_ok then "ok" else "FAIL"))
    rows;
  Printf.printf "byte-identity: %s\n"
    (if List.for_all (fun d -> d.drill_ok) rows then "PASS" else "FAIL")

(* ------------------------------------------------------------------ *)
(* State-growth observatory: the run feeding the CI growth guard       *)
(* ------------------------------------------------------------------ *)

(* Deliberately NOT [scaled]: the checked-in guard baseline
   (OBSERVE_baseline.json) compares against this exact configuration, so
   it must not move with AMMBOOST_BENCH_SCALE. *)
let observe_cfg =
  { base with
    Config.daily_volume = 100_000;
    epochs = 6;
    users = 24;
    seed = base.Config.seed ^ "-observe" }

type observe_run = {
  obs_ledger : Observe.Growth_ledger.t;
  obs_series_json : string; (* the ledger in guard-baseline form *)
  obs_report : string;      (* the markdown run-report *)
  obs_sampled : int;
  obs_seen : int;
  obs_result : System.result;
}

let observe_report ?metrics ?counterfactual (r : System.result) =
  let cfg = r.System.cfg in
  Observe.Run_report.render ~title:"ammBoost run report"
    ~params:
      [ ("seed", cfg.Config.seed);
        ("daily volume", string_of_int cfg.Config.daily_volume);
        ("epochs", string_of_int cfg.Config.epochs);
        ("users", string_of_int cfg.Config.users);
        ("rounds/epoch", string_of_int cfg.Config.sc_rounds_per_epoch);
        ("round duration (s)", Printf.sprintf "%.1f" cfg.Config.sc_round_duration) ]
    ~summary:
      [ ("generated", string_of_int r.System.generated);
        ("processed", string_of_int r.System.processed);
        ("rejected", string_of_int r.System.rejected);
        ("throughput (tx/s)", Printf.sprintf "%.2f" r.System.throughput);
        ("epochs applied",
         Printf.sprintf "%d/%d" r.System.epochs_applied r.System.epochs_run);
        ("lifecycle sampled ops",
         Printf.sprintf "%d/%d" r.System.lifecycle_sampled r.System.lifecycle_seen);
        ("final mode", r.System.final_mode) ]
    ~ledger:r.System.growth ?counterfactual ?metrics
    ~events:
      (List.map
         (fun (ts, m) ->
           { Observe.Run_report.ev_t = ts; ev_kind = "mode"; ev_detail = m })
         r.System.mode_transitions
      @ List.map
          (fun (label, n) ->
            { Observe.Run_report.ev_t = Float.infinity; ev_kind = "fault";
              ev_detail = Printf.sprintf "%s x%d (whole run)" label n })
          r.System.faults_injected)
    ()

let observe ?sink () =
  let private_sink = Telemetry.Report.sink () in
  let r = System.run ~sink:private_sink observe_cfg in
  (match sink with
  | Some s -> Telemetry.Report.merge_into ~into:s private_sink
  | None -> ());
  { obs_ledger = r.System.growth;
    obs_series_json = Observe.Growth_ledger.to_json r.System.growth;
    obs_report =
      observe_report ~metrics:private_sink.Telemetry.Report.metrics r;
    obs_sampled = r.System.lifecycle_sampled;
    obs_seen = r.System.lifecycle_seen;
    obs_result = r }

let print_observe o =
  Printf.printf "\n=== State-growth observatory (seed %s) ===\n"
    o.obs_result.System.cfg.Config.seed;
  let headline =
    [ "mc.bytes.total"; "mc.gas.total"; "sc.cumulative_bytes"; "sc.stored_bytes";
      "bank.storage_words"; "baseline.bytes.sepolia" ]
  in
  Printf.printf "%-6s" "epoch";
  List.iter (fun k -> Printf.printf "%24s" k) headline;
  print_newline ();
  List.iter
    (fun (row : Observe.Growth_ledger.row) ->
      Printf.printf "%-6d" row.Observe.Growth_ledger.ge_epoch;
      List.iter
        (fun k ->
          match Observe.Growth_ledger.field row k with
          | Some v -> Printf.printf "%24.0f" v
          | None -> Printf.printf "%24s" "-")
        headline;
      print_newline ())
    (Observe.Growth_ledger.rows o.obs_ledger);
  Printf.printf "lifecycle: %d of %d included ops sampled (1 in 8)\n" o.obs_sampled
    o.obs_seen

(* ------------------------------------------------------------------ *)
(* Scale sweep: users vs wall-seconds vs peak RSS                      *)
(* ------------------------------------------------------------------ *)

let sweep_users_default = [ 100; 1_000; 10_000 ]

let sweep_users () =
  match Sys.getenv_opt "AMMBOOST_SWEEP_USERS" with
  | None | Some "" -> sweep_users_default
  | Some s ->
    let ns =
      String.split_on_char ',' s
      |> List.filter_map (fun p -> int_of_string_opt (String.trim p))
      |> List.filter (fun n -> n > 0)
    in
    if ns = [] then sweep_users_default else List.sort_uniq compare ns

let sweep_epochs () =
  match Option.bind (Sys.getenv_opt "AMMBOOST_SWEEP_EPOCHS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 3

(* Each cell is seeded by its own user count, so a cell's output does not
   depend on which other cells run: trimming the sweep via
   AMMBOOST_SWEEP_USERS never changes the remaining rows. *)
let sweep_cfg ~users =
  let daily_volume = users * 500 in
  let arrivals =
    int_of_float
      (Float.ceil
         (float_of_int daily_volume *. base.Config.sc_round_duration /. 86_400.0))
  in
  { base with
    Config.users;
    epochs = sweep_epochs ();
    daily_volume;
    (* One deposit per user per epoch floods the mainchain queue, and the
       epoch sync carrying every user's entry must fit a single block
       (head-of-line): scale the gas limit and the meta-block capacity
       with the population so large cells cannot wedge. *)
    mc_gas_limit = Stdlib.max base.Config.mc_gas_limit (users * 100_000);
    meta_block_bytes = Stdlib.max base.Config.meta_block_bytes (arrivals * 1024);
    seed = Printf.sprintf "%s-sweep-%d" base.Config.seed users }

type sweep_cell = {
  sw_users : int;
  sw_generated : int;
  sw_processed : int;
  sw_throughput : float;
  sw_epochs_applied : int;
  sw_epochs_run : int;
  sw_storage_words : float;
  sw_wall_s : float;
  sw_rss_kb : int;
  sw_major_words : float;
  sw_promoted_words : float;
  sw_minor_words : float;
  sw_alloc_rate_mw_s : float;
      (* total allocation (minor + major − promoted), million words per
         wall second — the mutator's allocation pressure *)
  sw_summary_users : int; (* user entries across the cell's summaries *)
  sw_summary_users_max : int; (* largest single summary's user list *)
  sw_gc_pauses : int; (* minor collections + major slices *)
  sw_gc_pause_total_ms : float;
  sw_gc_pause_max_ms : float;
}

let peak_rss_kb () =
  (* VmHWM from /proc/self/status (Linux); 0 where unavailable. Process-
     wide and monotone, hence the ascending sequential cell order. *)
  match In_channel.with_open_text "/proc/self/status" In_channel.input_all with
  | exception Sys_error _ -> 0
  | text ->
    String.split_on_char '\n' text
    |> List.fold_left
         (fun acc line ->
           if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
             let digits =
               String.to_seq line
               |> Seq.filter (fun c -> c >= '0' && c <= '9')
               |> String.of_seq
             in
             match int_of_string_opt digits with Some v -> v | None -> acc
           else acc)
         0

let scale_sweep ?sink () =
  (* Sequential by design — never fanned across domains: peak RSS is a
     process-wide high-water mark, so cells run one at a time in
     ascending user order for the measurement to be attributable. *)
  let gc_pause = Telemetry.Gc_pause.start () in
  ignore (Telemetry.Gc_pause.poll gc_pause); (* drop pre-sweep noise *)
  List.map
    (fun users ->
      let cfg = sweep_cfg ~users in
      let private_sink = Telemetry.Report.sink () in
      let sw = Telemetry.Clock.stopwatch () in
      let g0 = Gc.quick_stat () in
      let r = System.run ~sink:private_sink cfg in
      let g1 = Gc.quick_stat () in
      let wall = Telemetry.Clock.elapsed_wall sw in
      let pauses = Telemetry.Gc_pause.poll gc_pause in
      (match sink with
      | Some s -> Telemetry.Report.merge_into ~into:s private_sink
      | None -> ());
      let storage_words =
        match List.rev (Observe.Growth_ledger.rows r.System.growth) with
        | last :: _ ->
          Option.value ~default:0.0
            (Observe.Growth_ledger.field last "bank.storage_words")
        | [] -> 0.0
      in
      let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
      let major_words = g1.Gc.major_words -. g0.Gc.major_words in
      let promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words in
      let allocated = minor_words +. major_words -. promoted_words in
      let ms ns = Int64.to_float ns /. 1_000_000.0 in
      let row =
        { sw_users = users; sw_generated = r.System.generated;
          sw_processed = r.System.processed; sw_throughput = r.System.throughput;
          sw_epochs_applied = r.System.epochs_applied;
          sw_epochs_run = r.System.epochs_run; sw_storage_words = storage_words;
          sw_wall_s = wall; sw_rss_kb = peak_rss_kb ();
          sw_major_words = major_words; sw_promoted_words = promoted_words;
          sw_minor_words = minor_words;
          sw_alloc_rate_mw_s =
            (if wall > 0.0 then allocated /. wall /. 1_000_000.0 else 0.0);
          sw_summary_users = r.System.summary_user_entries;
          sw_summary_users_max = r.System.summary_user_entries_max;
          sw_gc_pauses = pauses.Telemetry.Gc_pause.pauses;
          sw_gc_pause_total_ms = ms pauses.Telemetry.Gc_pause.total_ns;
          sw_gc_pause_max_ms = ms pauses.Telemetry.Gc_pause.max_ns }
      in
      (* Wall/RSS vary run to run: stderr only, stdout stays identical. *)
      Printf.eprintf
        "  [sweep users=%d: %.1fs wall, rss peak %dKB, %.0f major words, \
         %.0f Mw/s alloc, gc max pause %.2fms, %d summary user entries]\n%!"
        users wall row.sw_rss_kb row.sw_major_words row.sw_alloc_rate_mw_s
        row.sw_gc_pause_max_ms row.sw_summary_users;
      row)
    (sweep_users ())

let print_scale_sweep rows =
  Printf.printf "\n=== Scale sweep (epochs=%d) ===\n" (sweep_epochs ());
  Printf.printf "%-10s%14s%14s%18s%10s%16s%16s\n" "users" "generated" "processed"
    "throughput tx/s" "epochs" "storage words" "summary users";
  List.iter
    (fun c ->
      Printf.printf "%-10d%14d%14d%18.2f%7d/%-2d%16.0f%11d/%-4d\n" c.sw_users
        c.sw_generated c.sw_processed c.sw_throughput c.sw_epochs_applied
        c.sw_epochs_run c.sw_storage_words c.sw_summary_users
        c.sw_summary_users_max)
    rows

let sweep_json rows =
  let cell c =
    Telemetry.Json.obj_of_fields
      [ ("users", Telemetry.Json.Int c.sw_users);
        ("generated", Telemetry.Json.Int c.sw_generated);
        ("processed", Telemetry.Json.Int c.sw_processed);
        ("epochs_applied", Telemetry.Json.Int c.sw_epochs_applied);
        ("storage_words", Telemetry.Json.Float c.sw_storage_words);
        ("wall_s", Telemetry.Json.Float c.sw_wall_s);
        ("rss_peak_kb", Telemetry.Json.Int c.sw_rss_kb);
        ("gc_major_words", Telemetry.Json.Float c.sw_major_words);
        ("gc_promoted_words", Telemetry.Json.Float c.sw_promoted_words);
        ("gc_minor_words", Telemetry.Json.Float c.sw_minor_words);
        ("alloc_rate_mw_s", Telemetry.Json.Float c.sw_alloc_rate_mw_s);
        ("summary_users", Telemetry.Json.Int c.sw_summary_users);
        ("summary_users_max", Telemetry.Json.Int c.sw_summary_users_max);
        ("gc_pauses", Telemetry.Json.Int c.sw_gc_pauses);
        ("gc_pause_total_ms", Telemetry.Json.Float c.sw_gc_pause_total_ms);
        ("gc_pause_max_ms", Telemetry.Json.Float c.sw_gc_pause_max_ms) ]
  in
  Telemetry.Json.obj
    [ ("schema", Telemetry.Json.string "ammboost-sweep/2");
      ("epochs", string_of_int (sweep_epochs ()));
      ("cells", Telemetry.Json.array (List.map cell rows)) ]

(* ------------------------------------------------------------------ *)
(* Twin-audit drill: scripted silent corruption vs the continuous      *)
(* differential audit, a second-domain time-travel consumer, and the   *)
(* same-process overhead measurement behind the CI gate                *)
(* ------------------------------------------------------------------ *)

let twin_base =
  { base with
    Config.epochs = 5;
    daily_volume = scaled 50_000;
    users = 20;
    miners = 40;
    committee_size = 13;
    max_faulty = 4;
    seed = base.Config.seed ^ "-twin" }

let twin_script script =
  { Faults.Fault_plan.none with
    Faults.Fault_plan.corruption =
      { Faults.Fault_plan.corruption_rate = 0.0; corruption_script = script } }

(* Shared extra rows so the table prints one aligned matrix: detection
   bookkeeping (injections vs same-epoch reports keyed by epoch + key
   string), bisection counts, and a read-only time-travel probe run
   concurrently on two domains against the immutable view. *)
let twin_extra (r : System.result) =
  let caught_in_epoch (e, k) =
    List.exists
      (fun rep ->
        rep.Twin.r_epoch = e && Twin.key_to_string rep.Twin.r_key = k)
      r.System.twin_reports
  in
  let inj = r.System.twin_injections in
  let hits = List.length (List.filter caught_in_epoch inj) in
  let bisected =
    List.length
      (List.filter (fun rep -> rep.Twin.r_culprit <> None) r.System.twin_reports)
  in
  let out_of_band = List.length r.System.twin_reports - bisected in
  let verdict =
    if inj = [] then r.System.twin_consistent else hits = List.length inj
  in
  let view_rows =
    match r.System.twin_view with
    | None -> [ ("Epochs sealed", "off"); ("View probe (2 domains)", "off") ]
    | Some v ->
      let epochs = Twin.epochs_sealed v in
      (* Two domains read the same immutable view concurrently: custody
         series on one, bank.meta reads on the other. *)
      let custodies, meta_reads =
        Parallel.run_pair
          (fun () ->
            List.length (List.filter_map (fun e -> Twin.custody_at v ~epoch:e) epochs))
          (fun () ->
            List.length
              (List.filter
                 (fun e -> Twin.read_at v ~epoch:e Twin.Bank_meta <> None)
                 epochs))
      in
      [ ("Epochs sealed", string_of_int (List.length epochs));
        ("View probe (2 domains)", Printf.sprintf "%d/%d" custodies meta_reads) ]
  in
  [ ("Twin audits", string_of_int r.System.twin_audits);
    ("Divergent keys", string_of_int r.System.twin_divergences);
    ("Injected/caught in-epoch",
     Printf.sprintf "%d/%d" (List.length inj) hits);
    ("Reports bisected", string_of_int bisected);
    ("Reports out-of-band", string_of_int out_of_band);
    ("Final mode", r.System.final_mode);
    ("Twin verdict", if verdict then "pass" else "FAIL") ]
  @ view_rows

let twin_audit ?sink ?domains () =
  let spr = twin_base.Config.sc_rounds_per_epoch in
  (* Corruption is scripted at the summary round (spr-1): no transaction
     processing follows it inside the epoch, so the flip cannot be
     overwritten by a later legitimate write before the audit — the
     same-epoch detection guarantee is exact for these cells. *)
  let corrupt label script =
    cell ~label ~extra:twin_extra
      { twin_base with
        Config.faults = twin_script script;
        seed = twin_base.Config.seed ^ "-" ^ label }
  in
  run_cells ?sink ?domains
    [ cell ~label:"clean" ~extra:twin_extra twin_base;
      corrupt "corrupt-dep" [ (1, spr - 1, Faults.Fault_plan.Deposit_row) ];
      corrupt "corrupt-pos" [ (1, spr - 1, Faults.Fault_plan.Position_slab) ];
      corrupt "corrupt-tick" [ (1, spr - 1, Faults.Fault_plan.Pool_tick) ];
      (* Consecutive corruptions under background chaos: the second
         divergence must drive the watchdog streak into a halt. *)
      cell ~label:"multi-chaos" ~extra:twin_extra
        { twin_base with
          Config.faults =
            { (Faults.Fault_plan.chaos ~intensity:0.05 ()) with
              Faults.Fault_plan.corruption =
                { Faults.Fault_plan.corruption_rate = 0.0;
                  corruption_script =
                    [ (1, spr - 1, Faults.Fault_plan.Deposit_row);
                      (2, spr - 1, Faults.Fault_plan.Position_slab) ] } };
          mc_confirmations = 3;
          seed = twin_base.Config.seed ^ "-multi" } ]

(* The overhead measurement behind the CI wall-clock gate: the same
   sweep cell run twice in this process — twin off, then twin on — so
   the ratio sees identical machine conditions. Wall times are
   measurements: stderr and the twin JSON only, never stdout. *)
type twin_overhead = {
  tov_users : int;
  tov_epochs : int;
  tov_wall_off : float;
  tov_wall_on : float;
  tov_overhead_pct : float;
  tov_audits : int;
  tov_divergences : int;
  tov_consistent : bool;
}

let twin_overhead_users () =
  match Option.bind (Sys.getenv_opt "AMMBOOST_TWIN_USERS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 1_000

let twin_overhead ?sink () =
  let users = twin_overhead_users () in
  let cfg = sweep_cfg ~users in
  let measure twin_on =
    let cfg = { cfg with Config.twin_audit = twin_on } in
    let private_sink = Telemetry.Report.sink () in
    let sw = Telemetry.Clock.stopwatch () in
    let r = System.run ~sink:private_sink cfg in
    let wall = Telemetry.Clock.elapsed_wall sw in
    (match sink with
    | Some s -> Telemetry.Report.merge_into ~into:s private_sink
    | None -> ());
    (r, wall)
  in
  let _, wall_off = measure false in
  let r_on, wall_on = measure true in
  let o =
    { tov_users = users; tov_epochs = cfg.Config.epochs;
      tov_wall_off = wall_off; tov_wall_on = wall_on;
      tov_overhead_pct = 100.0 *. ((wall_on /. Float.max 1e-9 wall_off) -. 1.0);
      tov_audits = r_on.System.twin_audits;
      tov_divergences = r_on.System.twin_divergences;
      tov_consistent = r_on.System.twin_consistent }
  in
  Printf.eprintf
    "  [twin overhead users=%d: off %.2fs, on %.2fs (%+.1f%%), %d audits]\n%!"
    users wall_off wall_on o.tov_overhead_pct o.tov_audits;
  o

let print_twin_overhead o =
  (* Deterministic fields only; the wall ratio lives on stderr/JSON. *)
  Printf.printf "\n=== Twin-audit overhead cell (users=%d, epochs=%d) ===\n"
    o.tov_users o.tov_epochs;
  Printf.printf "  audits run        %14d\n" o.tov_audits;
  Printf.printf "  divergent keys    %14d\n" o.tov_divergences;
  Printf.printf "  fault-free audit  %14s\n"
    (if o.tov_consistent then "pass" else "FAIL")

let twin_overhead_json o =
  Telemetry.Json.obj
    [ ("schema", Telemetry.Json.string "ammboost-twin/1");
      ("users", string_of_int o.tov_users);
      ("epochs", string_of_int o.tov_epochs);
      ("wall_off_s", Telemetry.Json.float o.tov_wall_off);
      ("wall_on_s", Telemetry.Json.float o.tov_wall_on);
      ("overhead_pct", Telemetry.Json.float o.tov_overhead_pct);
      ("audits", string_of_int o.tov_audits);
      ("divergences", string_of_int o.tov_divergences);
      ("consistent", if o.tov_consistent then "true" else "false") ]
