(* Streaming aggregates — experiments process millions of transactions,
   so only running sums are kept, never per-transaction lists. *)

type agg = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let agg () = { count = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }

let observe a v =
  a.count <- a.count + 1;
  a.sum <- a.sum +. v;
  if v < a.min_v then a.min_v <- v;
  if v > a.max_v then a.max_v <- v

let mean a = if a.count = 0 then 0.0 else a.sum /. float_of_int a.count
let count a = a.count
let max_value a = if a.count = 0 then 0.0 else a.max_v

(* Per-epoch pending-payout bookkeeping: when epoch e's Sync lands at time
   T, every transaction processed in e has payout latency T − issued_at;
   only Σ issued_at and the count are needed. *)
type payout_tracker = {
  pending : (int, float ref * int ref) Hashtbl.t;
  latencies : agg;
}

let payout_tracker () = { pending = Hashtbl.create 16; latencies = agg () }

let note_processed t ~epoch ~issued_at =
  match Hashtbl.find_opt t.pending epoch with
  | Some (sum, n) ->
    sum := !sum +. issued_at;
    incr n
  | None -> Hashtbl.add t.pending epoch (ref issued_at, ref 1)

let settle_epoch t ~epoch ~sync_time =
  match Hashtbl.find_opt t.pending epoch with
  | None -> ()
  | Some (sum, n) ->
    t.latencies.count <- t.latencies.count + !n;
    t.latencies.sum <- t.latencies.sum +. ((sync_time *. float_of_int !n) -. !sum);
    Hashtbl.remove t.pending epoch

(* Mean issue time and count of an epoch's still-pending payouts; lets
   callers derive the epoch's payout latency at settle time. *)
let pending_mean_issued t ~epoch =
  match Hashtbl.find_opt t.pending epoch with
  | None -> None
  | Some (sum, n) when !n > 0 -> Some (!sum /. float_of_int !n, !n)
  | Some _ -> None

let payout_mean t = mean t.latencies
let payout_count t = count t.latencies
let unsettled_epochs t = Hashtbl.fold (fun e _ acc -> e :: acc) t.pending []
