(* Cross-layer runtime invariant auditor (see monitor.mli).

   Each audit re-derives, from first principles, the invariants the
   simulator's safety argument rests on, against the live state of every
   layer at an epoch boundary. Checks are pure reads: the monitor never
   mutates the state it audits. *)

module U256 = Amm_math.U256
module Token_bank = Tokenbank.Token_bank
module Sync_payload = Tokenbank.Sync_payload
module Pool = Uniswap.Pool
module Bls = Amm_crypto.Bls
module Tmetrics = Telemetry.Metrics
module Log = Telemetry.Log
module Json = Telemetry.Json

let scope = "monitor"

type severity = Warning | Degraded | Fatal
type layer = Amm | Tokenbank | Sidechain | Mainchain | Consensus | Durability | Twin

type violation = {
  v_check : string;
  v_layer : layer;
  v_severity : severity;
  v_detail : string;
}

type report = {
  r_epoch : int;
  r_checks : int;
  r_violations : violation list;
}

let severity_to_string = function
  | Warning -> "warning"
  | Degraded -> "degraded"
  | Fatal -> "fatal"

let layer_to_string = function
  | Amm -> "amm"
  | Tokenbank -> "tokenbank"
  | Sidechain -> "sidechain"
  | Mainchain -> "mainchain"
  | Consensus -> "consensus"
  | Durability -> "durability"
  | Twin -> "twin"

let severity_rank = function Warning -> 0 | Degraded -> 1 | Fatal -> 2

let worst r =
  List.fold_left
    (fun acc v ->
      match acc with
      | None -> Some v.v_severity
      | Some s ->
        if severity_rank v.v_severity > severity_rank s then Some v.v_severity
        else acc)
    None r.r_violations

let has_fatal r = List.exists (fun v -> v.v_severity = Fatal) r.r_violations

type thresholds = {
  lag_warning : int;
  lag_degraded : int;
  signing_streak_degraded : int;
}

let default_thresholds =
  { lag_warning = 2; lag_degraded = 3; signing_streak_degraded = 4 }

type t = {
  thresholds : thresholds;
  c_audits : Tmetrics.counter;
  c_warning : Tmetrics.counter;
  c_degraded : Tmetrics.counter;
  c_fatal : Tmetrics.counter;
  mutable audits : int;
  mutable total_warning : int;
  mutable total_degraded : int;
  mutable total_fatal : int;
}

let create ?(thresholds = default_thresholds) (sink : Telemetry.Report.sink) =
  let reg = sink.Telemetry.Report.metrics in
  { thresholds;
    c_audits = Tmetrics.counter reg "monitor.audits";
    c_warning = Tmetrics.counter reg "monitor.violations.warning";
    c_degraded = Tmetrics.counter reg "monitor.violations.degraded";
    c_fatal = Tmetrics.counter reg "monitor.violations.fatal";
    audits = 0; total_warning = 0; total_degraded = 0; total_fatal = 0 }

let audits_run t = t.audits

let violation_totals t =
  List.filter
    (fun (_, n) -> n > 0)
    [ ("degraded", t.total_degraded); ("fatal", t.total_fatal);
      ("warning", t.total_warning) ]

(* ------------------------------------------------------------------ *)
(* Individual checks. Each returns a violation list (usually empty).   *)
(* ------------------------------------------------------------------ *)

let pair_str (a, b) = Printf.sprintf "(%s, %s)" (U256.to_string a) (U256.to_string b)

(* Token conservation across the ledger, the bank and the pools: the
   ERC20 balances the bank custodies must equal its pool reserves plus
   every deposit that can still be outstanding. *)
let check_custody ~bank ~deposit_horizon =
  let pool_sum0, pool_sum1 =
    List.fold_left
      (fun (a0, a1) pid ->
        match Token_bank.pool bank pid with
        | Some p -> (U256.add a0 p.Token_bank.balance0, U256.add a1 p.Token_bank.balance1)
        | None -> (a0, a1))
      (U256.zero, U256.zero)
      (List.init 4 Fun.id)
  in
  let dep0 = ref U256.zero and dep1 = ref U256.zero in
  for e = 0 to deposit_horizon do
    List.iter
      (fun (_, (d0, d1)) ->
        dep0 := U256.add !dep0 d0;
        dep1 := U256.add !dep1 d1)
      (Token_bank.deposits_for_epoch bank ~epoch:e)
  done;
  let expect0 = U256.add pool_sum0 !dep0 and expect1 = U256.add pool_sum1 !dep1 in
  let c0, c1 = Token_bank.total_custody bank in
  if U256.equal c0 expect0 && U256.equal c1 expect1 then []
  else
    [ { v_check = "custody-conservation"; v_layer = Tokenbank; v_severity = Fatal;
        v_detail =
          Printf.sprintf "custody %s <> pools+deposits %s"
            (pair_str (c0, c1)) (pair_str (expect0, expect1)) } ]

(* Bank-side pool solvency: the value the last applied summary attributes
   to open positions (principal + fees) must be covered by the recorded
   pool reserves, per token. *)
let check_bank_solvency ~bank =
  let pool_sum0, pool_sum1 =
    List.fold_left
      (fun (a0, a1) pid ->
        match Token_bank.pool bank pid with
        | Some p -> (U256.add a0 p.Token_bank.balance0, U256.add a1 p.Token_bank.balance1)
        | None -> (a0, a1))
      (U256.zero, U256.zero)
      (List.init 4 Fun.id)
  in
  let v0, v1 =
    List.fold_left
      (fun (a0, a1) (p : Sync_payload.position_entry) ->
        ( U256.add a0 (U256.add p.Sync_payload.amount0 p.Sync_payload.fees0),
          U256.add a1 (U256.add p.Sync_payload.amount1 p.Sync_payload.fees1) ))
      (U256.zero, U256.zero) (Token_bank.positions bank)
  in
  if U256.ge pool_sum0 v0 && U256.ge pool_sum1 v1 then []
  else
    [ { v_check = "pool-solvency"; v_layer = Tokenbank; v_severity = Fatal;
        v_detail =
          Printf.sprintf "position value %s exceeds pool reserves %s"
            (pair_str (v0, v1)) (pair_str (pool_sum0, pool_sum1)) } ]

(* Live AMM structural invariants, via Pool's own helpers. *)
let check_amm ~pool =
  let a =
    if Pool.check_liquidity_consistency pool then []
    else
      [ { v_check = "amm-liquidity"; v_layer = Amm; v_severity = Fatal;
          v_detail = "tick-table liquidity_net does not match in-range liquidity" } ]
  in
  let b =
    if Pool.check_owed_solvency pool then []
    else
      [ { v_check = "amm-owed-solvency"; v_layer = Amm; v_severity = Fatal;
          v_detail = "reserves do not cover tokens_owed + protocol fees" } ]
  in
  a @ b

(* Liveness of the summary pipeline. Steady state at an epoch-e boundary:
   the summary for e-1 exists (produced lag 0) and the bank has applied
   through e-2 (applied lag 1). *)
let check_liveness t ~epoch ~bank ~last_summary_epoch =
  let th = t.thresholds in
  let lag_violation ~check ~layer ~lag ~what =
    if lag >= th.lag_degraded then
      [ { v_check = check; v_layer = layer; v_severity = Degraded;
          v_detail = Printf.sprintf "%s lag %d epochs" what lag } ]
    else if lag >= th.lag_warning then
      [ { v_check = check; v_layer = layer; v_severity = Warning;
          v_detail = Printf.sprintf "%s lag %d epochs" what lag } ]
    else []
  in
  let produced_lag = (epoch - 1) - last_summary_epoch in
  let applied_lag = last_summary_epoch - Token_bank.last_synced_epoch bank in
  lag_violation ~check:"summary-liveness" ~layer:Sidechain ~lag:produced_lag
    ~what:"summary production"
  (* one epoch of applied lag is the pipeline depth, so shift by one *)
  @ lag_violation ~check:"sync-liveness" ~layer:Mainchain ~lag:(applied_lag - 1)
      ~what:"sync application"

(* Pending quorum certificates: epochs must chain contiguously from the
   bank's synced frontier and every signature must verify under the key
   chain starting at the bank's recorded committee vk. *)
let check_certificates ~bank ~pending =
  let rec go vk expected = function
    | [] -> []
    | (p, signature) :: rest ->
      if p.Sync_payload.epoch <> expected then
        [ { v_check = "epoch-contiguity"; v_layer = Mainchain; v_severity = Fatal;
            v_detail =
              Printf.sprintf "pending summary chain expected epoch %d, got %d"
                expected p.Sync_payload.epoch } ]
      else if not (Bls.verify vk (Sync_payload.signing_bytes p) signature) then
        [ { v_check = "quorum-certificate"; v_layer = Sidechain; v_severity = Fatal;
            v_detail =
              Printf.sprintf "invalid quorum certificate for epoch %d"
                p.Sync_payload.epoch } ]
      else go p.Sync_payload.next_committee_vk (expected + 1) rest
  in
  go (Token_bank.committee_vk bank) (Token_bank.last_synced_epoch bank + 1) pending

let check_signing t ~degraded_signing_streak =
  if degraded_signing_streak >= t.thresholds.signing_streak_degraded then
    [ { v_check = "degraded-signing"; v_layer = Consensus; v_severity = Degraded;
        v_detail =
          Printf.sprintf "%d consecutive degraded-quorum signings"
            degraded_signing_streak } ]
  else if degraded_signing_streak >= 1 then
    [ { v_check = "degraded-signing"; v_layer = Consensus; v_severity = Warning;
        v_detail =
          Printf.sprintf "%d consecutive degraded-quorum signings"
            degraded_signing_streak } ]
  else []

(* ------------------------------------------------------------------ *)
(* The audit                                                           *)
(* ------------------------------------------------------------------ *)

let count t v =
  match v.v_severity with
  | Warning ->
    t.total_warning <- t.total_warning + 1;
    Tmetrics.inc t.c_warning
  | Degraded ->
    t.total_degraded <- t.total_degraded + 1;
    Tmetrics.inc t.c_degraded
  | Fatal ->
    t.total_fatal <- t.total_fatal + 1;
    Tmetrics.inc t.c_fatal

let emit ~now ~epoch v =
  let fields =
    [ ("severity", Json.String (severity_to_string v.v_severity));
      ("layer", Json.String (layer_to_string v.v_layer));
      ("check", Json.String v.v_check);
      ("epoch", Json.Int epoch);
      ("detail", Json.String v.v_detail) ]
  in
  match v.v_severity with
  | Fatal -> Log.error ~scope ~t:now ~fields "monitor.violation"
  | Degraded | Warning -> Log.warn ~scope ~t:now ~fields "monitor.violation"

(* Out-of-band violations observed by other subsystems (e.g. the durable
   store finding a corrupt snapshot during recovery). Counted and
   emitted exactly like audit findings, but attached to no report. *)
let record_external t ~now ~epoch ~severity ~layer ~check ~detail =
  let v = { v_check = check; v_layer = layer; v_severity = severity;
            v_detail = detail } in
  count t v;
  emit ~now ~epoch v

let audit t ~epoch ~now ~bank ~pool ~last_summary_epoch ~pending ~deposit_horizon
    ~degraded_signing_streak ~committee_live =
  t.audits <- t.audits + 1;
  Tmetrics.inc t.c_audits;
  let liveness =
    (* A committee that was deliberately dissolved (post-halt) or is
       scripted as permanently lost makes the liveness lags meaningless:
       only the safety checks still apply. *)
    if committee_live then
      check_liveness t ~epoch ~bank ~last_summary_epoch
      @ check_signing t ~degraded_signing_streak
    else []
  in
  let violations =
    check_custody ~bank ~deposit_horizon
    @ check_bank_solvency ~bank
    @ check_amm ~pool
    @ liveness
    @ check_certificates ~bank ~pending
  in
  List.iter
    (fun v ->
      count t v;
      emit ~now ~epoch v)
    violations;
  { r_epoch = epoch; r_checks = (if committee_live then 7 else 5);
    r_violations = violations }
