(** Cross-layer runtime invariant auditor.

    Once per epoch the simulator hands the monitor a consistent view of
    every layer — the live AMM pool, the mainchain TokenBank, the
    sidechain's summary frontier and its pending quorum certificates —
    and the monitor re-checks the invariants that the safety argument
    rests on: token conservation across ledger / bank / pool reserves,
    pool solvency against the aggregate position value, epoch contiguity
    of the summary chain, and the validity of every pending quorum
    certificate.

    Violations are classified by severity. [Warning] is an expected
    transient (one epoch of sync lag, a degraded-quorum signature);
    [Degraded] is sustained lag that the watchdog should react to;
    [Fatal] is a broken safety invariant — conservation, solvency or an
    invalid certificate — and immediately halts the system. Every
    violation is exported as a [monitor.violation] structured event plus
    severity-bucketed counters on the run's telemetry sink. *)

type severity = Warning | Degraded | Fatal
type layer = Amm | Tokenbank | Sidechain | Mainchain | Consensus | Durability | Twin

type violation = {
  v_check : string;    (** stable check id, e.g. ["custody-conservation"] *)
  v_layer : layer;
  v_severity : severity;
  v_detail : string;
}

type report = {
  r_epoch : int;
  r_checks : int;               (** checks evaluated in this audit *)
  r_violations : violation list;
}

val severity_to_string : severity -> string
val layer_to_string : layer -> string

val worst : report -> severity option
(** The highest severity in the report, [None] if it is clean. *)

val has_fatal : report -> bool

(** Lag thresholds for the contiguity / liveness checks. *)
type thresholds = {
  lag_warning : int;   (** unapplied summary epochs before a Warning *)
  lag_degraded : int;  (** … before a Degraded violation *)
  signing_streak_degraded : int;
      (** consecutive degraded-quorum signings before a Degraded *)
}

val default_thresholds : thresholds

type t

val create : ?thresholds:thresholds -> Telemetry.Report.sink -> t

val audit :
  t ->
  epoch:int ->
  now:float ->
  bank:Tokenbank.Token_bank.t ->
  pool:Uniswap.Pool.t ->
  last_summary_epoch:int ->
  pending:(Tokenbank.Sync_payload.t * Amm_crypto.Bls.signature) list ->
  deposit_horizon:int ->
  degraded_signing_streak:int ->
  committee_live:bool ->
  report
(** Runs every check against the epoch-start state. [last_summary_epoch]
    is the newest quorum-certified summary the sidechain has produced;
    [pending] is the chain of certified payloads not yet applied by the
    bank, oldest first; [deposit_horizon] bounds the epochs whose
    deposits can still be outstanding (for the conservation sum).
    [committee_live = false] (permanent loss or post-halt dissolution)
    skips the liveness checks — only the safety invariants still apply. *)

val record_external :
  t ->
  now:float ->
  epoch:int ->
  severity:severity ->
  layer:layer ->
  check:string ->
  detail:string ->
  unit
(** Record a violation observed out-of-band by another subsystem (e.g.
    the durable store finding a corrupt snapshot during recovery).
    Counted and emitted exactly like an audit finding, but attached to
    no report — in particular it never drives the watchdog, which reacts
    only to audit reports. *)

val audits_run : t -> int

val violation_totals : t -> (string * int) list
(** Cumulative violation counts per severity, sorted by name —
    [[("degraded", _); ("fatal", _); ("warning", _)]] with zero entries
    omitted. *)
