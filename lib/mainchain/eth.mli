(** The simulated smart-contract mainchain (Ethereum/Sepolia stand-in).

    Blocks are mined at a fixed interval (default 12 s) with a gas limit;
    submitted transactions become eligible after their user flow's
    prerequisite transactions (ERC20 approvals etc.) complete, modeled as
    sequential legs of [(0.6 + U(0,1)) * interval] each — which reproduces
    the confirmation latencies of the paper's Table 6 (≈1.1 blocks per
    leg). Chain growth, per-label gas and latency are all recorded. *)

type t

type tx_spec = {
  label : string;        (** metric bucket, e.g. "deposit", "sync", "swap" *)
  size_bytes : int;
  gas : int;
  flow_txs : int;        (** sequential transactions in the user flow,
                             including this one (deposit = 4, swap = 2, ...) *)
  tag : string option;   (** correlation tag, e.g. sync epoch *)
  execute : (int -> unit) option;  (** state transition, given block height *)
}

type block

val block_height : block -> int
val block_time : block -> float
val block_tx_tags : block -> string list

val create :
  ?interval:float -> ?gas_limit:int -> ?header_size:int -> ?k_depth:int ->
  rng:Amm_crypto.Rng.t -> unit -> t

val interval : t -> float

val gas_limit : t -> int
val set_gas_limit : t -> int -> unit
(** Changes the block gas limit from the next mined block on (models
    congestion windows). The limit must stay above the largest single
    pending transaction or that transaction never fits a block. *)

val now : t -> float
val height : t -> int
val confirmed_height : t -> int

val submit : t -> at:float -> tx_spec -> unit
(** Enqueues a transaction flow starting at time [at]. *)

val advance_to : t -> float -> unit
(** Mines every block due up to the given time, executing included
    transactions. *)

val block_at : t -> int -> block option
(** The canonical block at a height, genesis included; [None] above the
    tip or below the pruning horizon. *)

val is_tag_included : t -> string -> bool
(** Whether a transaction with this tag sits on the canonical chain. *)

val tag_inclusion_time : t -> string -> float option

val rollback : t -> int -> string list
(** Fork switch abandoning the last [n] blocks; returns the tags of the
    transactions that fell off the chain. *)

(** {1 Metrics} *)

val cumulative_bytes : t -> int
val gas_used_total : t -> int
val gas_used_by_label : t -> (string * int) list
val bytes_by_label : t -> (string * int) list

val gas_snapshot : t -> (string * int) list
(** Like {!gas_used_by_label} but sorted by label — safe to fold into
    deterministic output. *)

val bytes_snapshot : t -> (string * int) list
(** Like {!bytes_by_label} but sorted by label. *)

val growth_deltas : t -> (string * int * int) list
(** [(label, gas_total, bytes_total)] for every label whose totals moved
    since the last call, sorted by label, and resets the dirty set — the
    incremental feed behind the growth ledger's per-label series. Both
    tables are monotone (a rollback abandons blocks but never refunds
    mined gas), so merging these rows into a cache reproduces
    {!gas_snapshot}/{!bytes_snapshot} exactly, at O(changed labels) per
    sample instead of O(all labels). *)

val latencies_by_label : t -> (string * float list) list
(** Completion latency (flow start to inclusion) per label. *)

val mean_latency : t -> string -> float option
val included_count : t -> int
val pending_count : t -> int
