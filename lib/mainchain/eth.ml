module Rng = Amm_crypto.Rng
module Log = Telemetry.Log

let scope = "eth"

type tx_spec = {
  label : string;
  size_bytes : int;
  gas : int;
  flow_txs : int;
  tag : string option;
  execute : (int -> unit) option;
}

type pending = {
  spec : tx_spec;
  submitted_at : float;
  ready_at : float;
  seq : int;  (* submission order; breaks ready_at ties *)
}

type included = { i_label : string; i_tag : string option; i_size : int; i_gas : int;
                  i_latency : float }

type block = {
  b_height : int;
  b_time : float;
  b_txs : included list;
  b_gas_used : int;
  b_size : int;
}

let block_height b = b.b_height
let block_time b = b.b_time
let block_tx_tags b = List.filter_map (fun t -> t.i_tag) b.b_txs

type t = {
  intervl : float;
  mutable gas_limit : int;
  header_size : int;
  rng : Rng.t;
  mutable heap : pending array; (* binary min-heap by (ready_at, seq) *)
  mutable heap_len : int;
  mutable seq_counter : int;
  ledger : block Chain.Ledger.t;
  mutable next_block_time : float;
  mutable current_time : float;
  gas_by_label : (string, int) Hashtbl.t;
  bytes_by_label : (string, int) Hashtbl.t;
  dirty_labels : (string, unit) Hashtbl.t;
      (* labels whose gas/bytes totals moved since the last
         [growth_deltas] drain; both tables are monotone (rollbacks drop
         blocks, never refund gas), so a label's current total is always
         its delta-merged value *)
  latencies : (string, float list ref) Hashtbl.t;
  mutable tag_times : (string * float) list;
  mutable included_count : int;
}

(* Propagation/queueing offset before a broadcast transaction can appear
   in a block, in block-interval units; one leg ≈ 1.1 blocks on average. *)
let propagation_fraction = 0.6

let create ?(interval = 12.0) ?(gas_limit = 30_000_000) ?(header_size = 508)
    ?(k_depth = 1) ~rng () =
  let genesis = { b_height = 0; b_time = 0.0; b_txs = []; b_gas_used = 0; b_size = header_size } in
  { intervl = interval; gas_limit; header_size; rng;
    heap = [||]; heap_len = 0; seq_counter = 0;
    ledger = Chain.Ledger.create ~genesis ~size:(fun b -> b.b_size) ~k_depth;
    next_block_time = interval; current_time = 0.0;
    gas_by_label = Hashtbl.create 16; bytes_by_label = Hashtbl.create 16;
    dirty_labels = Hashtbl.create 16;
    latencies = Hashtbl.create 16; tag_times = []; included_count = 0 }

let interval t = t.intervl
let gas_limit t = t.gas_limit

(* Congestion windows (fault injection) shrink the limit temporarily;
   a limit below the largest single transaction would wedge the queue. *)
let set_gas_limit t limit =
  if limit <= 0 then invalid_arg "Eth.set_gas_limit: limit must be positive";
  t.gas_limit <- limit

let now t = t.current_time
let height t = Chain.Ledger.height t.ledger
let confirmed_height t = Chain.Ledger.confirmed_height t.ledger

let leg_time t = (propagation_fraction +. Rng.float t.rng) *. t.intervl

(* The pending pool is a binary min-heap in (ready_at, submission seq)
   order — exactly the order the old sorted list maintained, but O(log n)
   per submission instead of O(n), which matters when a single epoch
   floods the queue with tens of thousands of deposits. *)
let heap_less a b =
  a.ready_at < b.ready_at || (a.ready_at = b.ready_at && a.seq < b.seq)

let heap_push t p =
  if t.heap_len = Array.length t.heap then begin
    let h = Array.make (Stdlib.max 16 (2 * Array.length t.heap)) p in
    Array.blit t.heap 0 h 0 t.heap_len;
    t.heap <- h
  end;
  t.heap.(t.heap_len) <- p;
  let i = ref t.heap_len in
  t.heap_len <- t.heap_len + 1;
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    heap_less t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let heap_peek t = if t.heap_len = 0 then None else Some t.heap.(0)

let heap_pop t =
  let root = t.heap.(0) in
  t.heap_len <- t.heap_len - 1;
  t.heap.(0) <- t.heap.(t.heap_len);
  let i = ref 0 and sifting = ref (t.heap_len > 1) in
  while !sifting do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.heap_len && heap_less t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.heap_len && heap_less t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest = !i then sifting := false
    else begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
  done;
  root

let submit t ~at spec =
  (* Prerequisite flow legs run sequentially; the final leg's propagation
     offset is added here, its block wait comes from mining below. *)
  let prereq = Stdlib.max 0 (spec.flow_txs - 1) in
  let ready = ref (at +. (propagation_fraction *. t.intervl)) in
  for _ = 1 to prereq do
    ready := !ready +. leg_time t
  done;
  let p = { spec; submitted_at = at; ready_at = !ready; seq = t.seq_counter } in
  t.seq_counter <- t.seq_counter + 1;
  heap_push t p

let bump tbl key v =
  Hashtbl.replace tbl key (v + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let record_latency t label v =
  match Hashtbl.find_opt t.latencies label with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add t.latencies label (ref [ v ])

let mine_block t =
  let time = t.next_block_time in
  (* Executed callbacks observe the block's timestamp through [now]. *)
  if time > t.current_time then t.current_time <- time;
  let gas_used = ref 0 in
  let included = ref [] in
  (* Drain in readiness order, stopping at the first transaction that is
     not ready or does not fit — head-of-line semantics, as before. *)
  let taking = ref true in
  while !taking do
    match heap_peek t with
    | Some p when p.ready_at <= time && !gas_used + p.spec.gas <= t.gas_limit ->
      ignore (heap_pop t);
      gas_used := !gas_used + p.spec.gas;
      let height = Chain.Ledger.height t.ledger + 1 in
      (match p.spec.execute with Some f -> f height | None -> ());
      let latency = time -. p.submitted_at in
      bump t.gas_by_label p.spec.label p.spec.gas;
      bump t.bytes_by_label p.spec.label p.spec.size_bytes;
      Hashtbl.replace t.dirty_labels p.spec.label ();
      record_latency t p.spec.label latency;
      (match p.spec.tag with
       | Some tag -> t.tag_times <- (tag, time) :: t.tag_times
       | None -> ());
      t.included_count <- t.included_count + 1;
      included :=
        { i_label = p.spec.label; i_tag = p.spec.tag; i_size = p.spec.size_bytes;
          i_gas = p.spec.gas; i_latency = latency }
        :: !included
    | Some _ | None -> taking := false
  done;
  let txs = List.rev !included in
  let size = t.header_size + List.fold_left (fun acc i -> acc + i.i_size) 0 txs in
  let height = Chain.Ledger.height t.ledger + 1 in
  Chain.Ledger.append t.ledger
    { b_height = height; b_time = time; b_txs = txs; b_gas_used = !gas_used;
      b_size = size };
  if txs <> [] then
    Log.debug ~scope ~t:time
      ~fields:
        [ ("height", Telemetry.Json.Int height);
          ("txs", Telemetry.Json.Int (List.length txs));
          ("gas", Telemetry.Json.Int !gas_used);
          ("bytes", Telemetry.Json.Int size);
          ("labels",
           Telemetry.Json.String (String.concat "," (List.map (fun i -> i.i_label) txs)))
        ]
      "block mined";
  t.next_block_time <- time +. t.intervl

let advance_to t time =
  while t.next_block_time <= time do
    mine_block t
  done;
  t.current_time <- time

let block_at t height = Chain.Ledger.nth t.ledger height

let is_tag_included t tag = List.mem_assoc tag t.tag_times
let tag_inclusion_time t tag = List.assoc_opt tag t.tag_times

let rollback t n =
  let dropped = Chain.Ledger.rollback t.ledger n in
  let tags = List.concat_map block_tx_tags dropped in
  Log.warn ~scope ~t:t.current_time
    ~fields:
      [ ("blocks", Telemetry.Json.Int (List.length dropped));
        ("new_height", Telemetry.Json.Int (Chain.Ledger.height t.ledger));
        ("dropped_tags", Telemetry.Json.String (String.concat "," tags)) ]
    "fork: mainchain rollback abandoned blocks";
  t.tag_times <- List.filter (fun (tag, _) -> not (List.mem tag tags)) t.tag_times;
  tags

let cumulative_bytes t = Chain.Ledger.cumulative_bytes t.ledger
let gas_used_total t = Hashtbl.fold (fun _ v acc -> acc + v) t.gas_by_label 0

let assoc_of_tbl tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

let gas_used_by_label t = assoc_of_tbl t.gas_by_label
let bytes_by_label t = assoc_of_tbl t.bytes_by_label

(* Snapshot accessors with a guaranteed order, for consumers that fold
   the per-label tables into deterministic output (the growth ledger). *)
let sorted_assoc_of_tbl tbl =
  List.sort (fun (a, _) (b, _) -> compare a b) (assoc_of_tbl tbl)

let gas_snapshot t = sorted_assoc_of_tbl t.gas_by_label
let bytes_snapshot t = sorted_assoc_of_tbl t.bytes_by_label

let growth_deltas t =
  let changed =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.dirty_labels [])
  in
  Hashtbl.reset t.dirty_labels;
  List.map
    (fun l ->
      ( l,
        Option.value ~default:0 (Hashtbl.find_opt t.gas_by_label l),
        Option.value ~default:0 (Hashtbl.find_opt t.bytes_by_label l) ))
    changed

let latencies_by_label t =
  Hashtbl.fold (fun k v acc -> (k, List.rev !v) :: acc) t.latencies []

let mean_latency t label =
  match Hashtbl.find_opt t.latencies label with
  | None -> None
  | Some l ->
    let values = !l in
    if values = [] then None
    else Some (List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values))

let included_count t = t.included_count
let pending_count t = t.heap_len
