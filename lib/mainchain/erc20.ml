module U256 = Amm_math.U256
module Address = Chain.Address

type t = {
  token : Chain.Token.t;
  mutable balances : U256.t Address.Map.t;
  mutable allowances : U256.t Address.Map.t Address.Map.t; (* owner -> spender -> amount *)
  mutable total_supply : U256.t;
}

let deploy token =
  { token; balances = Address.Map.empty; allowances = Address.Map.empty;
    total_supply = U256.zero }

let token t = t.token

let balance_of t addr =
  Option.value ~default:U256.zero (Address.Map.find_opt addr t.balances)

let total_supply t = t.total_supply

let set_balance t addr v = t.balances <- Address.Map.add addr v t.balances

let mint t addr amount =
  set_balance t addr (U256.add (balance_of t addr) amount);
  t.total_supply <- U256.add t.total_supply amount

let allowance t ~owner ~spender =
  match Address.Map.find_opt owner t.allowances with
  | None -> U256.zero
  | Some m -> Option.value ~default:U256.zero (Address.Map.find_opt spender m)

let charge meter label amount =
  match meter with Some m -> Gas.charge m label amount | None -> ()

let approve ?meter t ~owner ~spender amount =
  let m = Option.value ~default:Address.Map.empty (Address.Map.find_opt owner t.allowances) in
  t.allowances <- Address.Map.add owner (Address.Map.add spender amount m) t.allowances;
  charge meter "erc20.approve" (Gas.sload + Gas.sstore_update)

let transfer ?meter t ~source ~dest amount =
  charge meter "erc20.transfer" ((2 * Gas.sload) + (2 * Gas.sstore_update));
  let src_balance = balance_of t source in
  if U256.lt src_balance amount then
    Error
      (Printf.sprintf "erc20 %s: insufficient balance" (Chain.Token.symbol t.token))
  else begin
    set_balance t source (U256.sub src_balance amount);
    set_balance t dest (U256.add (balance_of t dest) amount);
    Ok ()
  end

type checkpoint = {
  c_balances : U256.t Address.Map.t;
  c_allowances : U256.t Address.Map.t Address.Map.t;
  c_supply : U256.t;
}

let checkpoint t =
  { c_balances = t.balances; c_allowances = t.allowances; c_supply = t.total_supply }

let restore t c =
  t.balances <- c.c_balances;
  t.allowances <- c.c_allowances;
  t.total_supply <- c.c_supply

let transfer_from ?meter t ~spender ~source ~dest amount =
  let allowed = allowance t ~owner:source ~spender in
  if U256.lt allowed amount then Error "erc20: insufficient allowance"
  else begin
    charge meter "erc20.allowance" (Gas.sload + Gas.sstore_update);
    match transfer ?meter t ~source ~dest amount with
    | Ok () ->
      (* Infinite approvals are never decremented (canonical ERC20
         behavior) — the deposit hot path skips two nested map rebuilds
         per token. Metering above is unchanged so gas baselines stay
         comparable. *)
      if not (U256.equal allowed U256.max_value) then begin
        let m = Address.Map.find source t.allowances in
        t.allowances <-
          Address.Map.add source (Address.Map.add spender (U256.sub allowed amount) m)
            t.allowances
      end;
      Ok ()
    | Error e -> Error e
  end
