(* Run-report generator: a self-contained markdown dashboard for one
   simulator run — growth trajectories (with ASCII sparklines) beside
   the Baseline counterfactual, per-class stage-latency tables pulled
   from the lifecycle histograms, and the watchdog/fault event timeline.
   Pure function of its inputs, so reports are deterministic. *)

module Metrics = Telemetry.Metrics
module Histogram = Telemetry.Histogram
module Lifecycle = Lifecycle

type event = {
  ev_t : float;
  ev_kind : string; (* "mode" | "fault" | "violation" | ... *)
  ev_detail : string;
}

let spark_chars = [| " "; "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
    let lo = List.fold_left Float.min Float.infinity values in
    let hi = List.fold_left Float.max Float.neg_infinity values in
    let span = hi -. lo in
    String.concat ""
      (List.map
         (fun v ->
           let i =
             if span <= 0.0 then 4
             else int_of_float ((v -. lo) /. span *. 8.0)
           in
           spark_chars.(Stdlib.max 0 (Stdlib.min 8 i)))
         values)

let human_bytes v =
  if Float.abs v >= 1e9 then Printf.sprintf "%.2f GB" (v /. 1e9)
  else if Float.abs v >= 1e6 then Printf.sprintf "%.2f MB" (v /. 1e6)
  else if Float.abs v >= 1e3 then Printf.sprintf "%.1f kB" (v /. 1e3)
  else Printf.sprintf "%.0f B" v

let md_row cells = "| " ^ String.concat " | " cells ^ " |\n"

let md_table ~header rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (md_row header);
  Buffer.add_string buf (md_row (List.map (fun _ -> "---") header));
  List.iter (fun r -> Buffer.add_string buf (md_row r)) rows;
  Buffer.contents buf

(* The growth-curve section: one line per ledger key with its sparkline
   and final value, then the per-epoch table of the headline keys. *)
let growth_section ~ledger ~counterfactual buf =
  Buffer.add_string buf "## State growth by epoch\n\n";
  let keys = Growth_ledger.keys ledger in
  (* The comparison falls back to the analytic counterfactual the ledger
     itself records; an explicitly passed series (a real Baseline run)
     wins. The extra sparkline row only appears when the series is not
     already a ledger key. *)
  let counterfactual =
    match counterfactual with
    | Some _ -> counterfactual
    | None -> (
      match Growth_ledger.series ledger "baseline.bytes.sepolia" with
      | [] -> None
      | s -> Some ("baseline.bytes.sepolia", s))
  in
  let extra_row =
    match counterfactual with
    | Some (label, _) when not (List.mem label keys) -> counterfactual
    | Some _ | None -> None
  in
  if keys = [] then Buffer.add_string buf "_no epochs sampled_\n\n"
  else begin
    Buffer.add_string buf "```\n";
    let width =
      List.fold_left (fun acc k -> Stdlib.max acc (String.length k)) 0 keys
    in
    List.iter
      (fun key ->
        let values = List.map snd (Growth_ledger.series ledger key) in
        let last = match List.rev values with v :: _ -> v | [] -> 0.0 in
        Buffer.add_string buf
          (Printf.sprintf "%-*s  %s  %s\n" width key (sparkline values)
             (human_bytes last)))
      keys;
    (match extra_row with
    | Some (label, series) when series <> [] ->
      let values = List.map snd series in
      let last = match List.rev values with v :: _ -> v | [] -> 0.0 in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %s  %s\n" width label (sparkline values)
           (human_bytes last))
    | Some _ | None -> ());
    Buffer.add_string buf "```\n\n";
    let headline =
      List.filter
        (fun k -> List.mem k keys)
        [ "mc.bytes.total"; "mc.gas.total"; "sc.cumulative_bytes";
          "sc.stored_bytes"; "summary.max_bytes"; "bank.storage_words" ]
    in
    let headline = if headline = [] then keys else headline in
    let rows =
      List.map
        (fun (r : Growth_ledger.row) ->
          string_of_int r.Growth_ledger.ge_epoch
          :: List.map
               (fun k ->
                 match Growth_ledger.field r k with
                 | Some v -> Printf.sprintf "%.0f" v
                 | None -> "-")
               headline)
        (Growth_ledger.rows ledger)
    in
    Buffer.add_string buf (md_table ~header:("epoch" :: headline) rows);
    Buffer.add_string buf "\n"
  end;
  match counterfactual with
  | Some (label, series) when series <> [] ->
    let growth_last key =
      match List.rev (Growth_ledger.series ledger key) with
      | (_, v) :: _ -> Some v
      | [] -> None
    in
    (match (growth_last "mc.bytes.total", List.rev series) with
    | Some ours, (_, theirs) :: _ when theirs > 0.0 ->
      Buffer.add_string buf
        (Printf.sprintf "Final mainchain growth **%s** vs %s **%s** — %.2f%% reduction.\n\n"
           (human_bytes ours) label (human_bytes theirs)
           (100.0 *. (1.0 -. (ours /. theirs))))
    | _ -> ())
  | Some _ | None -> ()

(* Per-class stage latency, read back from the lifecycle histograms. *)
let lifecycle_section ~metrics ~classes buf =
  let stages = [ "included"; "summarized"; "submitted"; "confirmed"; "pruned" ] in
  let rows =
    List.concat_map
      (fun cls ->
        List.filter_map
          (fun stage ->
            match
              Metrics.find_histogram metrics
                (Printf.sprintf "lifecycle.%s.%s" cls stage)
            with
            | Some h when Histogram.count h > 0 ->
              Some
                [ cls; stage; string_of_int (Histogram.count h);
                  Printf.sprintf "%.2f" (Histogram.quantile h 0.50);
                  Printf.sprintf "%.2f" (Histogram.quantile h 0.90);
                  Printf.sprintf "%.2f" (Histogram.quantile h 0.99) ]
            | _ -> None)
          stages)
      classes
  in
  if rows <> [] then begin
    Buffer.add_string buf "## Transaction lifecycle (sampled ops, latency s)\n\n";
    Buffer.add_string buf
      (md_table ~header:[ "class"; "stage"; "n"; "p50"; "p90"; "p99" ] rows);
    Buffer.add_string buf "\n"
  end;
  let amp_rows =
    List.filter_map
      (fun cls ->
        match
          Metrics.find_histogram metrics
            (Printf.sprintf "lifecycle.%s.amplification" cls)
        with
        | Some h when Histogram.count h > 0 ->
          Some
            [ cls; string_of_int (Histogram.count h);
              Printf.sprintf "%.3f" (Histogram.quantile h 0.50);
              Printf.sprintf "%.3f" (Histogram.quantile h 0.90);
              Printf.sprintf "%.3f" (Histogram.mean h) ]
        | _ -> None)
      classes
  in
  if amp_rows <> [] then begin
    Buffer.add_string buf
      "## Bytes amplification (L1 bytes per op / sidechain wire size)\n\n";
    Buffer.add_string buf
      (md_table ~header:[ "class"; "n"; "p50"; "p90"; "mean" ] amp_rows);
    Buffer.add_string buf "\n"
  end

let timeline_section ~events buf =
  if events <> [] then begin
    Buffer.add_string buf "## Event timeline\n\n";
    let sorted =
      List.stable_sort (fun a b -> Float.compare a.ev_t b.ev_t) events
    in
    Buffer.add_string buf
      (md_table ~header:[ "t (s)"; "kind"; "detail" ]
         (List.map
            (fun e -> [ Printf.sprintf "%.0f" e.ev_t; e.ev_kind; e.ev_detail ])
            sorted));
    Buffer.add_string buf "\n"
  end

let render ~title ~params ~summary ~ledger ?counterfactual ?metrics
    ?(classes = [ "swap"; "mint"; "burn"; "collect" ]) ?(events = []) () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n\n" title);
  if params <> [] then begin
    Buffer.add_string buf
      (md_table ~header:[ "parameter"; "value" ]
         (List.map (fun (k, v) -> [ k; v ]) params));
    Buffer.add_string buf "\n"
  end;
  if summary <> [] then begin
    Buffer.add_string buf "## Run summary\n\n";
    Buffer.add_string buf
      (md_table ~header:[ "metric"; "value" ]
         (List.map (fun (k, v) -> [ k; v ]) summary));
    Buffer.add_string buf "\n"
  end;
  growth_section ~ledger ~counterfactual buf;
  (match metrics with
  | Some m -> lifecycle_section ~metrics:m ~classes buf
  | None -> ());
  timeline_section ~events buf;
  Buffer.contents buf
