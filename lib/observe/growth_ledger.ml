(* Per-epoch state-growth ledger: one row per epoch boundary, each row a
   sorted (key -> bytes/words/gas) record sampled across the layers
   (mainchain labels, sidechain cumulative vs stored, summary sizes,
   TokenBank storage words). Rows also mirror into the metrics sink as
   [Metrics.time_series] points, so the existing sink-merge determinism
   machinery covers the ledger: identical runs produce byte-identical
   series at any domain count. *)

module Metrics = Telemetry.Metrics
module Json = Telemetry.Json

type row = {
  ge_epoch : int;
  ge_t : float; (* simulated seconds at the sample *)
  ge_fields : (string * float) list; (* sorted by key *)
}

type t = {
  metrics : Metrics.t option;
  mutable rows_rev : row list;
}

let series_prefix = "growth."

let create ?metrics () = { metrics; rows_rev = [] }

let sample t ~epoch ~t:time fields =
  let fields = List.sort (fun (a, _) (b, _) -> compare a b) fields in
  t.rows_rev <- { ge_epoch = epoch; ge_t = time; ge_fields = fields } :: t.rows_rev;
  match t.metrics with
  | None -> ()
  | Some reg ->
    List.iter
      (fun (key, v) ->
        Metrics.push (Metrics.time_series reg (series_prefix ^ key))
          ~t:(float_of_int epoch) v)
      fields

let rows t = List.rev t.rows_rev
let epochs_sampled t = List.length t.rows_rev

(* Every key that appears in any row, sorted; rows may differ (labels
   like "exit" only show up after a halt). *)
let keys t =
  List.sort_uniq compare
    (List.concat_map (fun r -> List.map fst r.ge_fields) t.rows_rev)

let field row key = List.assoc_opt key row.ge_fields

(* One series per key, oldest epoch first; epochs missing the key are
   skipped rather than zero-filled. *)
let series t key =
  List.filter_map
    (fun r -> Option.map (fun v -> (r.ge_epoch, v)) (field r key))
    (rows t)

let schema = "ammboost-observe/1"

let to_json t =
  let row_json r =
    Json.obj
      (("epoch", string_of_int r.ge_epoch)
      :: ("t", Json.float r.ge_t)
      :: List.map (fun (k, v) -> (k, Json.float v)) r.ge_fields)
  in
  Json.obj
    [ ("schema", Json.string schema);
      ("epochs", Json.array (List.map row_json (rows t))) ]
  ^ "\n"

(* Reads a ledger back from its [to_json] form (the checked-in guard
   baseline). Numbers land as floats, which is exact for the byte/gas
   ranges sampled. *)
let of_json text =
  match Json.parse text with
  | Error e -> Error ("growth ledger: " ^ e)
  | Ok doc ->
    (match Json.member "schema" doc with
    | Some (Json.Jstring s) when s = schema -> (
      match Json.member "epochs" doc with
      | Some (Json.Jarray rows) ->
        let parse_row = function
          | Json.Jobject fields ->
            let epoch =
              match List.assoc_opt "epoch" fields with
              | Some (Json.Jnumber f) -> int_of_float f
              | _ -> -1
            in
            let time =
              match List.assoc_opt "t" fields with
              | Some (Json.Jnumber f) -> f
              | _ -> 0.0
            in
            let data =
              List.filter_map
                (fun (k, v) ->
                  match v with
                  | Json.Jnumber f when k <> "epoch" && k <> "t" -> Some (k, f)
                  | _ -> None)
                fields
            in
            if epoch < 0 then Error "growth ledger: row missing epoch"
            else Ok { ge_epoch = epoch; ge_t = time; ge_fields = data }
          | _ -> Error "growth ledger: row is not an object"
        in
        let rec all acc = function
          | [] ->
            let t = create () in
            t.rows_rev <- acc;
            Ok t
          | r :: rest -> (
            match parse_row r with
            | Ok row -> all (row :: acc) rest
            | Error _ as e -> e)
        in
        all [] rows
      | _ -> Error "growth ledger: missing epochs array")
    | Some (Json.Jstring s) -> Error ("growth ledger: unknown schema " ^ s)
    | _ -> Error "growth ledger: missing schema")
