(* Causal transaction-lifecycle tracing. Each op is tagged at inclusion
   with a deterministic sampling decision (seeded FNV-1a over the tx id,
   keep 1 in 2^sample_shift); sampled ops carry (class, issued_at,
   wire_size) through the epoch pipeline, and each downstream stage —
   epoch summary, sync submission, L1 confirmation, prune — folds the
   stage's end-to-end latency into a per-class histogram. Records drop at
   prune, so memory is O(sampled ops in unpruned epochs) and every op
   pays O(1): one hash at inclusion, and stage events are per-epoch.

   Histogram names: lifecycle.<class>.<stage> (latency, seconds) and
   lifecycle.<class>.amplification (L1 bytes amortized per op at sync
   submission ÷ the op's own sidechain wire size). *)

module Metrics = Telemetry.Metrics
module Histogram = Telemetry.Histogram

type stage = Included | Summarized | Submitted | Confirmed | Pruned

let stage_name = function
  | Included -> "included"
  | Summarized -> "summarized"
  | Submitted -> "submitted"
  | Confirmed -> "confirmed"
  | Pruned -> "pruned"

type record = {
  lc_class : string;
  lc_issued_at : float;
  lc_wire : int;
}

type t = {
  metrics : Metrics.t;
  seed_hash : int64;
  keep_mask : int; (* keep when hash land keep_mask = 0 *)
  by_epoch : (int, record list ref) Hashtbl.t; (* sampled, inclusion order *)
  included_per_epoch : (int, int) Hashtbl.t; (* all included, for amortization *)
  mutable sampled : int;
  mutable seen : int;
}

(* FNV-1a, 64-bit: tiny, dependency-free, stable across platforms — the
   sampling decision must be identical for the same seed and tx id on
   every run and job count. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_fold h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let create ?(sample_shift = 3) ~metrics ~seed () =
  if sample_shift < 0 || sample_shift > 20 then invalid_arg "Lifecycle.create";
  { metrics;
    seed_hash = fnv1a_fold fnv_offset seed;
    keep_mask = (1 lsl sample_shift) - 1;
    by_epoch = Hashtbl.create 8; included_per_epoch = Hashtbl.create 8;
    sampled = 0; seen = 0 }

let sampled_count t = t.sampled
let seen_count t = t.seen

let keeps t ~id =
  Int64.to_int (fnv1a_fold t.seed_hash (Bytes.to_string id)) land t.keep_mask = 0

let observe t ~cls ~stage v =
  Metrics.observe t.metrics (Printf.sprintf "lifecycle.%s.%s" cls stage) v

(* Inclusion: the one per-op call. Counts every op for the amortization
   denominator; stores only the sampled ones. *)
let on_included t ~id ~cls ~issued_at ~wire ~epoch ~at =
  t.seen <- t.seen + 1;
  Hashtbl.replace t.included_per_epoch epoch
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.included_per_epoch epoch));
  if keeps t ~id then begin
    t.sampled <- t.sampled + 1;
    let cell =
      match Hashtbl.find_opt t.by_epoch epoch with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add t.by_epoch epoch l;
        l
    in
    cell := { lc_class = cls; lc_issued_at = issued_at; lc_wire = wire } :: !cell;
    observe t ~cls ~stage:(stage_name Included) (at -. issued_at)
  end

let iter_epoch t ~epoch f =
  match Hashtbl.find_opt t.by_epoch epoch with
  | None -> ()
  | Some cell -> List.iter f (List.rev !cell)

(* A downstream stage reached at [at]: every sampled op of the epoch
   observes its end-to-end latency. [Pruned] also drops the records. *)
let on_stage t ~epoch ~stage ~at =
  iter_epoch t ~epoch (fun r ->
      observe t ~cls:r.lc_class ~stage:(stage_name stage) (at -. r.lc_issued_at));
  if stage = Pruned then Hashtbl.remove t.by_epoch epoch

(* Sync submission: latency plus bytes amplification — the epoch's L1
   payload amortized over every included op, relative to each sampled
   op's own sidechain wire size. *)
let on_submitted t ~epoch ~at ~l1_bytes =
  let included =
    Stdlib.max 1 (Option.value ~default:0 (Hashtbl.find_opt t.included_per_epoch epoch))
  in
  let per_op = float_of_int l1_bytes /. float_of_int included in
  iter_epoch t ~epoch (fun r ->
      observe t ~cls:r.lc_class ~stage:(stage_name Submitted) (at -. r.lc_issued_at);
      observe t ~cls:r.lc_class ~stage:"amplification"
        (per_op /. float_of_int (Stdlib.max 1 r.lc_wire)))

(* Sampled-record classes still live (i.e. not yet pruned), sorted. *)
let live_classes t =
  Hashtbl.fold (fun _ cell acc -> List.map (fun r -> r.lc_class) !cell @ acc)
    t.by_epoch []
  |> List.sort_uniq compare
