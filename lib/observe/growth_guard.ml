(* Growth-guard: compares a freshly sampled growth ledger against a
   checked-in baseline. A regression is any sampled epoch where a byte,
   gas or storage-word series exceeds its baseline value beyond the
   tolerance; shrinking is always fine (that is the point of the paper).
   Missing epochs or keys on either side are reported too — a lost
   series is a lost guard. *)

type verdict = {
  violations : string list; (* empty = pass *)
  checked : int; (* (epoch, key) pairs compared *)
}

let ok v = v.violations = []

(* [tolerance] is relative: fresh > baseline * (1 + tolerance) fails.
   Values at or below [abs_floor] are compared absolutely (tiny series
   like storage words would otherwise fail on a one-word change). *)
let compare_ledgers ?(tolerance = 0.01) ?(abs_floor = 64.0) ~baseline ~fresh () =
  let violations = ref [] in
  let checked = ref 0 in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let fresh_rows = Growth_ledger.rows fresh in
  List.iter
    (fun (b : Growth_ledger.row) ->
      match
        List.find_opt
          (fun (f : Growth_ledger.row) -> f.Growth_ledger.ge_epoch = b.ge_epoch)
          fresh_rows
      with
      | None -> note "epoch %d: present in baseline, missing from fresh run" b.ge_epoch
      | Some f ->
        List.iter
          (fun (key, bv) ->
            match Growth_ledger.field f key with
            | None -> note "epoch %d %s: missing from fresh run" b.ge_epoch key
            | Some fv ->
              incr checked;
              let limit =
                if bv <= abs_floor then bv +. abs_floor
                else bv *. (1.0 +. tolerance)
              in
              if fv > limit then
                note "epoch %d %s: %.0f exceeds baseline %.0f (tolerance %.1f%%)"
                  b.ge_epoch key fv bv (100.0 *. tolerance))
          b.Growth_ledger.ge_fields)
    (Growth_ledger.rows baseline);
  if fresh_rows = [] then note "fresh run sampled no epochs";
  { violations = List.rev !violations; checked = !checked }

let compare_json ?tolerance ?abs_floor ~baseline ~fresh () =
  match (Growth_ledger.of_json baseline, Growth_ledger.of_json fresh) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("fresh: " ^ e)
  | Ok b, Ok f -> Ok (compare_ledgers ?tolerance ?abs_floor ~baseline:b ~fresh:f ())
