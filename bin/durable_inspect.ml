(* durable-inspect: human-readable dump of a durable directory.

   Prints every snapshot (validity verdict, epoch, record anchor,
   section sizes) and every WAL segment (start index, record stream,
   torn-tail diagnosis) so a crash-drill failure or an operator
   investigating a recovery can see exactly what is on disk.

   Usage: durable_inspect DIR [DIR ...]

   Read-only: unlike {!Durable.Recovery.scan}, nothing is repaired or
   deleted. *)

let dump_snapshot (epoch, path) =
  Printf.printf "snapshot %s (epoch %d)\n" (Filename.basename path) epoch;
  match Durable.Snapshot.load path with
  | Error e -> Printf.printf "  INVALID: %s\n" e
  | Ok s ->
    let m = s.Durable.Snapshot.meta in
    if m.Durable.Snapshot.epoch <> epoch then
      Printf.printf "  INVALID: filename/epoch mismatch (file says %d)\n"
        m.Durable.Snapshot.epoch
    else begin
      Printf.printf "  records_before %d\n" m.Durable.Snapshot.records_before;
      List.iter
        (fun (name, payload) ->
          Printf.printf "  section %-20s %6d bytes\n" name
            (Bytes.length payload))
        s.Durable.Snapshot.sections;
      match Durable.State_codec.validate s.Durable.Snapshot.sections with
      | Ok () -> Printf.printf "  state valid\n"
      | Error e -> Printf.printf "  INVALID state: %s\n" e
    end

let dump_segment (epoch, path) =
  Printf.printf "wal %s (epoch %d)\n" (Filename.basename path) epoch;
  match Durable.Wal.read_segment path with
  | Error e -> Printf.printf "  UNREADABLE: %s\n" e
  | Ok rr ->
    Printf.printf "  start_index %d, %d valid record(s), %d valid bytes\n"
      rr.Durable.Wal.rr_start_index
      (List.length rr.Durable.Wal.rr_records)
      rr.Durable.Wal.rr_valid_len;
    (match rr.Durable.Wal.rr_torn with
    | Some why -> Printf.printf "  TORN: %s\n" why
    | None -> ());
    List.iteri
      (fun i r ->
        Printf.printf "  [%d] %s\n"
          (rr.Durable.Wal.rr_start_index + i)
          (Durable.Record.describe r))
      rr.Durable.Wal.rr_records

let dump_dir dir =
  Printf.printf "== %s ==\n" dir;
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Printf.printf "  (no such directory)\n"
  else begin
    let snaps = Durable.Snapshot.list ~dir in
    let segs = Durable.Wal.list ~dir in
    if snaps = [] && segs = [] then Printf.printf "  (empty)\n";
    List.iter dump_snapshot snaps;
    List.iter dump_segment segs
  end

let () =
  match Array.to_list Sys.argv with
  | _ :: (_ :: _ as dirs) -> List.iter dump_dir dirs
  | _ ->
    prerr_endline "usage: durable_inspect DIR [DIR ...]";
    exit 2
