(* ammboost-sim: command-line driver for the ammBoost simulator.

     dune exec bin/ammboost_sim.exe -- run --volume 500000 --epochs 11
     dune exec bin/ammboost_sim.exe -- baseline --volume 500000
     dune exec bin/ammboost_sim.exe -- compare --volume 500000
     dune exec bin/ammboost_sim.exe -- run --interrupt silent:1 --interrupt rollback:2 *)

open Cmdliner
open Ammboost

(* ------------------------------------------------------------------ *)
(* Shared flags                                                        *)
(* ------------------------------------------------------------------ *)

let volume =
  Arg.(value & opt int Config.default.Config.daily_volume
       & info [ "volume"; "v" ] ~docv:"TX_PER_DAY" ~doc:"Daily transaction volume V_D.")

let epochs =
  Arg.(value & opt int Config.default.Config.epochs
       & info [ "epochs"; "e" ] ~docv:"N" ~doc:"Traffic-generation epochs.")

let rounds =
  Arg.(value & opt int Config.default.Config.sc_rounds_per_epoch
       & info [ "rounds" ] ~docv:"N" ~doc:"Sidechain rounds per epoch.")

let round_duration =
  Arg.(value & opt float Config.default.Config.sc_round_duration
       & info [ "round-duration" ] ~docv:"SECONDS" ~doc:"Sidechain round duration.")

let block_size =
  Arg.(value & opt int Config.default.Config.meta_block_bytes
       & info [ "block-size" ] ~docv:"BYTES" ~doc:"Meta-block size limit.")

let users =
  Arg.(value & opt int Config.default.Config.users
       & info [ "users" ] ~docv:"N" ~doc:"Participating users.")

let committee =
  Arg.(value & opt int Config.default.Config.committee_size
       & info [ "committee" ] ~docv:"N" ~doc:"Sidechain committee size.")

let seed =
  Arg.(value & opt string Config.default.Config.seed
       & info [ "seed" ] ~docv:"STRING" ~doc:"Deterministic experiment seed.")

let threshold_signing =
  Arg.(value & flag
       & info [ "threshold-signing" ]
           ~doc:"Run the full DKG + threshold BLS signing for Sync calls instead of the \
                 pre-generated committee key.")

let interrupt_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "silent"; e ] -> Ok (Config.Silent_sync_leader (int_of_string e))
    | [ "invalid"; e ] -> Ok (Config.Invalid_sync (int_of_string e))
    | [ "rollback"; e ] -> Ok (Config.Mainchain_rollback (int_of_string e))
    | [ "censor"; e ] -> Ok (Config.Censoring_committee (int_of_string e))
    | _ ->
      Error
        (`Msg
          "expected silent:<epoch>, invalid:<epoch>, rollback:<epoch> or censor:<epoch>")
  in
  let print fmt = function
    | Config.Silent_sync_leader e -> Format.fprintf fmt "silent:%d" e
    | Config.Invalid_sync e -> Format.fprintf fmt "invalid:%d" e
    | Config.Mainchain_rollback e -> Format.fprintf fmt "rollback:%d" e
    | Config.Censoring_committee e -> Format.fprintf fmt "censor:%d" e
  in
  Arg.conv (parse, print)

let interruptions =
  Arg.(value & opt_all interrupt_conv []
       & info [ "interrupt" ] ~docv:"KIND:EPOCH"
           ~doc:"Inject an interruption: silent:<epoch>, invalid:<epoch>, rollback:<epoch>. \
                 Repeatable.")

let make_config volume epochs rounds round_duration block_size users committee seed
    threshold_signing interruptions =
  { Config.default with
    daily_volume = volume; epochs; sc_rounds_per_epoch = rounds;
    sc_round_duration = round_duration; meta_block_bytes = block_size; users;
    committee_size = committee;
    miners = Stdlib.max Config.default.Config.miners (2 * committee);
    max_faulty = (committee - 2) / 3;
    seed; threshold_signing; interruptions }

let config_term =
  Term.(const make_config $ volume $ epochs $ rounds $ round_duration $ block_size $ users
        $ committee $ seed $ threshold_signing $ interruptions)

(* ------------------------------------------------------------------ *)
(* Telemetry flags                                                     *)
(* ------------------------------------------------------------------ *)

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON of the run's simulated-clock phase \
                 spans to $(docv); open it in chrome://tracing or ui.perfetto.dev.")

let metrics_out =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the run's metrics snapshot (counters, gauges, histograms with \
                 p50/p90/p99) as JSON to $(docv).")

let log_level =
  let levels =
    [ ("error", Telemetry.Log.Error); ("warn", Telemetry.Log.Warn);
      ("info", Telemetry.Log.Info); ("debug", Telemetry.Log.Debug) ]
  in
  Arg.(value & opt (some (enum levels)) None
       & info [ "log-level" ] ~docv:"LEVEL"
           ~doc:"Emit structured JSON-line logs on stderr at LEVEL \
                 (error|warn|info|debug). Overrides AMMBOOST_LOG; off by default.")

let report_out =
  Arg.(value & opt (some string) None
       & info [ "report-out" ] ~docv:"FILE"
           ~doc:"Write a self-contained markdown run-report (growth curves with \
                 sparklines and the Baseline counterfactual, per-class lifecycle \
                 latency and bytes-amplification tables, event timeline) to $(docv).")

let telemetry_term =
  let make trace_out metrics_out log_level = (trace_out, metrics_out, log_level) in
  Term.(const make $ trace_out $ metrics_out $ log_level)

(* Runs [f] against a fresh sink, then writes whichever outputs were
   requested. Without flags this adds nothing to stdout or disk. *)
let with_telemetry (trace_out, metrics_out, log_level) f =
  (match log_level with
  | Some _ as l -> Telemetry.Log.set_level l
  | None -> ());
  let sink = Telemetry.Report.sink ~trace:(trace_out <> None) () in
  let result = f sink in
  let write g =
    try g ()
    with Sys_error e ->
      Printf.eprintf "ammboost-sim: cannot write telemetry output: %s\n" e;
      exit 1
  in
  (match metrics_out with
  | Some path -> write (fun () -> Telemetry.Report.write_metrics sink ~path)
  | None -> ());
  (match trace_out with
  | Some path -> write (fun () -> Telemetry.Report.write_trace sink ~path)
  | None -> ());
  result

let write_text path text =
  try
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)
  with Sys_error e ->
    Printf.eprintf "ammboost-sim: cannot write report: %s\n" e;
    exit 1

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let report_run (r : System.result) =
  Printf.printf "== ammBoost run ==\n";
  Printf.printf "traffic      : generated %d, processed %d, rejected %d\n" r.System.generated
    r.System.processed r.System.rejected;
  Printf.printf "throughput   : %.2f tx/s\n" r.System.throughput;
  Printf.printf "latency      : sidechain %.3f s, payout %.2f s\n" r.System.mean_tx_latency
    r.System.mean_payout_latency;
  Printf.printf "mainchain    : %d B, %d gas (%s)\n" r.System.mc_tx_bytes r.System.mc_gas_total
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v)
          (List.sort compare r.System.mc_gas_by_label)));
  Printf.printf "sidechain    : %d B cumulative, %d B stored after pruning\n"
    r.System.sc_cumulative_bytes r.System.sc_stored_bytes;
  Printf.printf "epochs       : %d run, %d synced, %d mass-syncs\n" r.System.epochs_run
    r.System.epochs_applied r.System.mass_syncs;
  List.iter (fun (k, n) -> Printf.printf "rejection    : %-28s %d\n" k n)
    r.System.rejection_reasons;
  Printf.printf "mode         : %s (%d audits%s)\n" r.System.final_mode
    r.System.monitor_audits
    (if r.System.mode_transitions = [] then ""
     else
       ", "
       ^ String.concat " -> "
           (List.map (fun (ts, m) -> Printf.sprintf "%s@%.0fs" m ts)
              r.System.mode_transitions));
  if r.System.exits_served > 0 then
    Printf.printf "exits        : %d served, conservation %b%s\n" r.System.exits_served
      r.System.exit_conservation
      (match r.System.recovery_latency with
      | Some l -> Printf.sprintf ", recovered in %.0f s" l
      | None -> "");
  Printf.printf "custody ok   : %b\n" r.System.custody_consistent

let report_baseline (b : Baseline.result) =
  Printf.printf "== Baseline Uniswap-on-mainchain run ==\n";
  Printf.printf "traffic      : generated %d, executed %d, rejected %d\n" b.Baseline.generated
    b.Baseline.executed b.Baseline.rejected;
  Printf.printf "gas          : %d total\n" b.Baseline.gas_total;
  List.iter
    (fun (op, gas) ->
      let lat = Option.value ~default:0.0 (List.assoc_opt op b.Baseline.latency_by_op) in
      Printf.printf "  %-8s : %12d gas, latency %.2f s\n" op gas lat)
    (List.sort compare b.Baseline.gas_by_op);
  Printf.printf "growth       : %d B (Sepolia encoding), %d B (Ethereum encoding)\n"
    b.Baseline.mc_tx_bytes b.Baseline.mc_tx_bytes_ethereum

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let doc = "Run the ammBoost system simulation and report its metrics." in
  let run cfg tele report_out =
    with_telemetry tele (fun sink ->
        let r = System.run ~sink cfg in
        report_run r;
        match report_out with
        | Some path ->
          write_text path
            (Experiments.observe_report ~metrics:sink.Telemetry.Report.metrics r)
        | None -> ())
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ config_term $ telemetry_term $ report_out)

let baseline_cmd =
  let doc = "Run the baseline (Uniswap directly on the mainchain)." in
  let run cfg tele =
    with_telemetry tele (fun _sink -> report_baseline (Baseline.run cfg))
  in
  Cmd.v (Cmd.info "baseline" ~doc) Term.(const run $ config_term $ telemetry_term)

let compare_cmd =
  let doc = "Run both systems on the same traffic and print the reductions (Fig. 6)." in
  let compare cfg tele report_out =
    let r, b =
      with_telemetry tele (fun sink ->
          let r = System.run ~sink cfg in
          let b = Baseline.run cfg in
          (match report_out with
          | Some path ->
            (* The report plots the measured Baseline series instead of the
               ledger's analytic counterfactual — both runs saw the same
               traffic, so the comparison is apples to apples. *)
            write_text path
              (Experiments.observe_report ~metrics:sink.Telemetry.Report.metrics
                 ~counterfactual:
                   ("baseline.measured.bytes", b.Baseline.growth_epochs)
                 r)
          | None -> ());
          (r, b))
    in
    report_run r;
    print_newline ();
    report_baseline b;
    let reduction ours theirs =
      100.0 *. (1.0 -. (float_of_int ours /. float_of_int (Stdlib.max 1 theirs)))
    in
    Printf.printf "\n== Comparison ==\n";
    Printf.printf "gas reduction    : %.2f%% (paper: 94.53%%)\n"
      (reduction r.System.mc_gas_total b.Baseline.gas_total);
    Printf.printf "growth reduction : %.2f%% vs Sepolia (paper: 80.25%%), %.2f%% vs Ethereum \
                   (paper: 92.80%%)\n"
      (reduction r.System.mc_tx_bytes b.Baseline.mc_tx_bytes)
      (reduction r.System.mc_tx_bytes b.Baseline.mc_tx_bytes_ethereum)
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const compare $ config_term $ telemetry_term $ report_out)

let () =
  let doc = "ammBoost: state growth control for AMMs (simulation)" in
  let info = Cmd.info "ammboost-sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; baseline_cmd; compare_cmd ]))
